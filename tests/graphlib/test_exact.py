"""Unit tests for exact coloring / clique partition."""

import random

import pytest

from repro.graphlib.clique_cover import is_clique_partition
from repro.graphlib.coloring import color_count, greedy_color, is_proper_coloring
from repro.graphlib.exact import (
    SearchBudgetExceeded,
    exact_chromatic_number,
    exact_clique_partition,
    exact_color,
)
from repro.graphlib.graph import Graph


def _cycle(n: int) -> Graph:
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def _complete(n: int) -> Graph:
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


class TestExactColor:
    def test_empty(self):
        assert exact_color(Graph(0)) == []

    def test_edgeless(self):
        colors = exact_color(Graph(5))
        assert color_count(colors) == 1

    def test_complete_graph(self):
        assert exact_chromatic_number(_complete(6)) == 6

    def test_odd_cycle_is_three(self):
        assert exact_chromatic_number(_cycle(9)) == 3

    def test_even_cycle_is_two(self):
        assert exact_chromatic_number(_cycle(10)) == 2

    def test_petersen_graph_is_three(self):
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),  # outer cycle
            (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),  # inner star
            (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),  # spokes
        ]
        assert exact_chromatic_number(Graph(10, edges)) == 3

    def test_always_proper_and_never_worse_than_greedy(self):
        rng = random.Random(17)
        for _ in range(15):
            g = Graph(12)
            for _ in range(rng.randint(0, 40)):
                u, v = rng.sample(range(12), 2)
                g.add_edge(u, v)
            exact = exact_color(g)
            assert is_proper_coloring(g, exact)
            greedy = greedy_color(g, "dsatur")
            assert color_count(exact) <= color_count(greedy)

    def test_node_budget_enforced(self):
        # A 14-vertex random graph with a 1-node budget must bail out.
        rng = random.Random(3)
        g = Graph(14)
        for _ in range(40):
            u, v = rng.sample(range(14), 2)
            g.add_edge(u, v)
        with pytest.raises(SearchBudgetExceeded):
            exact_color(g, node_limit=1)


class TestExactCliquePartition:
    def test_two_triangles(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        cliques = exact_clique_partition(g)
        assert len(cliques) == 2
        assert is_clique_partition(g, cliques)

    def test_path_graph(self):
        # P4: minimum clique partition = 2 (two edges).
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert len(exact_clique_partition(g)) == 2

    def test_matches_or_beats_greedy_partition(self):
        from repro.graphlib.clique_cover import clique_partition

        rng = random.Random(23)
        for _ in range(10):
            g = Graph(10)
            for _ in range(rng.randint(5, 30)):
                u, v = rng.sample(range(10), 2)
                g.add_edge(u, v)
            exact = exact_clique_partition(g)
            greedy = clique_partition(g)
            assert is_clique_partition(g, exact)
            assert len(exact) <= len(greedy)
