"""Unit tests for greedy graph coloring."""

import pytest

from repro.graphlib.coloring import color_count, greedy_color, is_proper_coloring
from repro.graphlib.graph import Graph


def _cycle(n: int) -> Graph:
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def _complete(n: int) -> Graph:
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


ALL_STRATEGIES = ("given", "largest_first", "smallest_last", "dsatur")


class TestProperness:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_cycle_coloring_proper(self, strategy):
        g = _cycle(7)
        colors = greedy_color(g, strategy)
        assert is_proper_coloring(g, colors)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_random_graph_proper(self, strategy):
        import random

        rng = random.Random(4)
        g = Graph(25)
        for _ in range(80):
            u, v = rng.sample(range(25), 2)
            g.add_edge(u, v)
        assert is_proper_coloring(g, greedy_color(g, strategy))


class TestColorCounts:
    def test_complete_graph_needs_n(self):
        for strategy in ALL_STRATEGIES:
            assert color_count(greedy_color(_complete(5), strategy)) == 5

    def test_even_cycle_two_colors(self):
        assert color_count(greedy_color(_cycle(8), "smallest_last")) == 2

    def test_odd_cycle_three_colors(self):
        colors = greedy_color(_cycle(7), "smallest_last")
        assert color_count(colors) == 3

    def test_edgeless_one_color(self):
        assert color_count(greedy_color(Graph(10), "dsatur")) == 1

    def test_empty_graph(self):
        assert greedy_color(Graph(0)) == []
        assert color_count([]) == 0

    def test_bipartite_dsatur_two_colors(self):
        # K_{3,3}: DSATUR is exact on bipartite graphs.
        g = Graph(6, [(i, j) for i in range(3) for j in range(3, 6)])
        assert color_count(greedy_color(g, "dsatur")) == 2


class TestStrategyHandling:
    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            greedy_color(Graph(3), "rainbow")

    def test_strategies_can_disagree_but_all_proper(self):
        # Crown-like graph where greedy orderings differ.
        g = Graph(8, [(0, 5), (0, 7), (1, 4), (1, 6), (2, 5), (2, 7), (3, 4), (3, 6)])
        counts = {}
        for strategy in ALL_STRATEGIES:
            colors = greedy_color(g, strategy)
            assert is_proper_coloring(g, colors)
            counts[strategy] = color_count(colors)
        assert min(counts.values()) >= 2
