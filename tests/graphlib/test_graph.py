"""Unit tests for the Graph container."""

import pytest

from repro.graphlib.graph import Graph


class TestBasics:
    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0 and g.edge_count() == 0

    def test_add_and_query_edges(self):
        g = Graph(4, [(0, 1), (1, 2)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert g.edge_count() == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(1, 1)])

    def test_out_of_range_vertex(self):
        g = Graph(3)
        with pytest.raises(IndexError):
            g.add_edge(0, 3)
        with pytest.raises(IndexError):
            g.has_edge(-1, 0)

    def test_duplicate_edge_idempotent(self):
        g = Graph(3, [(0, 1), (0, 1)])
        assert g.edge_count() == 1

    def test_degree_and_neighbors(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.neighbors(0) == frozenset({1, 2, 3})
        assert g.degree(1) == 1

    def test_edges_iteration_unique(self):
        g = Graph(4, [(0, 1), (2, 3), (1, 2)])
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 3)]


class TestComplement:
    def test_complement_of_empty_is_complete(self):
        g = Graph(4)
        inv = g.complement()
        assert inv.edge_count() == 6

    def test_complement_involution(self):
        g = Graph(5, [(0, 1), (2, 3), (1, 4)])
        double = g.complement().complement()
        assert sorted(double.edges()) == sorted(g.edges())

    def test_edge_counts_sum_to_complete(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        inv = g.complement()
        assert g.edge_count() + inv.edge_count() == 15


class TestClique:
    def test_is_clique(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2)])
        assert g.is_clique([0, 1, 2])
        assert g.is_clique([0, 1])
        assert g.is_clique([3])
        assert g.is_clique([])
        assert not g.is_clique([0, 1, 3])
