"""Unit tests for bipartite matching, vertex cover and independent set."""

import random

from repro.graphlib.matching import (
    hopcroft_karp,
    maximum_independent_set,
    min_vertex_cover,
)


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adjacency = {0: [0], 1: [1], 2: [2]}
        matching = hopcroft_karp(adjacency, 3)
        assert len(matching) == 3

    def test_augmenting_path_needed(self):
        # 0 prefers right-0 but must yield it so 1 can match.
        adjacency = {0: [0, 1], 1: [0]}
        matching = hopcroft_karp(adjacency, 2)
        assert len(matching) == 2
        assert matching[1] == 0 and matching[0] == 1

    def test_unmatchable_left_vertex(self):
        adjacency = {0: [0], 1: [0], 2: [0]}
        matching = hopcroft_karp(adjacency, 1)
        assert len(matching) == 1

    def test_empty(self):
        assert hopcroft_karp({}, 0) == {}

    def test_matching_is_consistent(self):
        rng = random.Random(13)
        for _ in range(10):
            n_left, n_right = rng.randint(1, 12), rng.randint(1, 12)
            adjacency = {
                u: sorted(rng.sample(range(n_right), rng.randint(0, n_right)))
                for u in range(n_left)
            }
            matching = hopcroft_karp(adjacency, n_right)
            # No right vertex matched twice, every edge exists.
            assert len(set(matching.values())) == len(matching)
            assert all(v in adjacency[u] for u, v in matching.items())


class TestKonig:
    def test_cover_covers_all_edges(self):
        rng = random.Random(29)
        for _ in range(10):
            n_left, n_right = rng.randint(1, 10), rng.randint(1, 10)
            adjacency = {
                u: sorted(rng.sample(range(n_right), rng.randint(0, n_right)))
                for u in range(n_left)
            }
            matching = hopcroft_karp(adjacency, n_right)
            cover_left, cover_right = min_vertex_cover(adjacency, n_right, matching)
            for u, nbrs in adjacency.items():
                for v in nbrs:
                    assert u in cover_left or v in cover_right
            # König: |cover| equals |matching|.
            assert len(cover_left) + len(cover_right) == len(matching)


class TestIndependentSet:
    def test_independent_set_has_no_edges(self):
        adjacency = {0: [0, 1], 1: [1], 2: [2]}
        free_left, free_right = maximum_independent_set(adjacency, 3)
        for u in free_left:
            assert not set(adjacency[u]) & free_right

    def test_size_complements_cover(self):
        adjacency = {0: [0], 1: [0, 1], 2: [1]}
        free_left, free_right = maximum_independent_set(adjacency, 2)
        matching = hopcroft_karp(adjacency, 2)
        assert len(free_left) + len(free_right) == 3 + 2 - len(matching)
