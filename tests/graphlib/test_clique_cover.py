"""Unit tests for clique partition via inverse-graph coloring."""

import random

from repro.graphlib.clique_cover import clique_partition, is_clique_partition
from repro.graphlib.graph import Graph


class TestCliquePartition:
    def test_empty_graph(self):
        assert clique_partition(Graph(0)) == []

    def test_complete_graph_single_clique(self):
        g = Graph(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
        cliques = clique_partition(g)
        assert len(cliques) == 1
        assert cliques[0] == [0, 1, 2, 3, 4]

    def test_edgeless_graph_singletons(self):
        g = Graph(4)
        cliques = clique_partition(g)
        assert len(cliques) == 4
        assert all(len(c) == 1 for c in cliques)

    def test_two_disjoint_triangles(self):
        g = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        cliques = clique_partition(g)
        assert len(cliques) == 2
        assert is_clique_partition(g, cliques)

    def test_partition_always_valid_on_random_graphs(self):
        rng = random.Random(7)
        for trial in range(10):
            g = Graph(15)
            for _ in range(rng.randint(5, 60)):
                u, v = rng.sample(range(15), 2)
                g.add_edge(u, v)
            cliques = clique_partition(g)
            assert is_clique_partition(g, cliques)

    def test_strategies_give_valid_partitions(self):
        g = Graph(8, [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5), (5, 6), (6, 7)])
        for strategy in ("given", "largest_first", "smallest_last", "dsatur"):
            assert is_clique_partition(g, clique_partition(g, strategy))


class TestValidityChecker:
    def test_detects_missing_vertex(self):
        g = Graph(3, [(0, 1)])
        assert not is_clique_partition(g, [[0, 1]])

    def test_detects_duplicate_vertex(self):
        g = Graph(3, [(0, 1)])
        assert not is_clique_partition(g, [[0, 1], [1], [2]])

    def test_detects_non_clique(self):
        g = Graph(3, [(0, 1)])
        assert not is_clique_partition(g, [[0, 1, 2]])
