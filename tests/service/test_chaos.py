"""Daemon chaos harness: seeded faults against real daemons.

Acceptance gates of the hardening PR, each driven through
:mod:`repro.service.chaos` with a seed printed on failure so any run
replays bit-identically:

* SIGKILL mid-job + restart → bit-identical resume, no torn state
  files;
* disk-full (shimmed) → typed ``disk_full`` failure, zero torn journal
  bytes, and the *next* job on freed disk succeeds;
* corrupt/truncated journal tail → recovery replays the intact prefix
  and recomputes the rest, still bit-identical;
* over-budget job cancelled within ~one watchdog interval while a
  healthy job finishes untouched;
* stalled clients and floods never block a healthy client.

Runs under the gating ``service-chaos`` CI job with pytest-timeout.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs import set_disk_free_override
from repro.service.chaos import (
    ChaosPlan,
    corrupt_bytes,
    disk_full,
    flood_submits,
    stalled_request,
    truncate_tail,
)
from repro.service.client import ServiceClient, wait_for_daemon
from repro.service.executor import execute_job
from repro.service.guard import ServiceLimits
from repro.service.jobs import JobPaths, JobRecord, validate_submission
from repro.service.protocol import decode_line, encode_line
from repro.service.server import FractureService

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20250808"))

LONG_BAR = [[0.0, 0.0], [6600.0, 0.0], [6600.0, 60.0], [0.0, 60.0]]
SHORT_BAR = [[0.0, 0.0], [220.0, 0.0], [220.0, 60.0], [0.0, 60.0]]
SQUARE = [[0, 0], [40, 0], [40, 40], [0, 40]]


@pytest.fixture
def chaos_plan():
    """Seeded fault plan; the repr (with seed) lands in failure output."""
    return ChaosPlan(CHAOS_SEED)


@pytest.fixture(autouse=True)
def _restore_disk_shim():
    yield
    set_disk_free_override(None)


async def request(service: FractureService, payload: dict) -> dict:
    reader, writer = await asyncio.open_unix_connection(
        str(service.socket_path)
    )
    try:
        writer.write(encode_line(payload))
        await writer.drain()
        return decode_line(await reader.readline())
    finally:
        writer.close()


async def wait_settled(
    service: FractureService, job_id: str, timeout_s: float = 60.0
) -> dict:
    response = await request(
        service, {"op": "wait", "job_id": job_id, "timeout_s": timeout_s}
    )
    assert not response.get("timed_out"), f"{job_id} never settled"
    return response["job"]


def windowed_bar_payload(vertices, **overrides) -> dict:
    job = {"clips": {"bar": vertices}, "method": "partition",
           "window_nm": 100.0, "checkpoint": True, **overrides}
    return {"op": "submit", "job": job}


def assert_no_torn_state(state_dir: Path) -> int:
    """Every state file under ``state_dir`` parses; returns files seen.

    "No torn state files" is the blanket durability gate: after any
    fault, whatever exists on disk is valid JSON/JSONL (modulo the
    final line of an append-only journal, which recovery skips by
    design) or is quarantined with a ``.bad`` suffix.
    """
    seen = 0
    for path in sorted(state_dir.rglob("*.json")):
        seen += 1
        json.loads(path.read_text())  # raises on a torn file
    for journal in sorted(state_dir.rglob("*.jsonl")):
        seen += 1
        lines = journal.read_text().splitlines()
        for line in lines[:-1]:  # the tail may be mid-append
            json.loads(line)
    return seen


def wait_for_first_tile(checkpoint_dir: Path, timeout_s: float = 60.0) -> None:
    """Block until a checkpoint journal holds at least one settled tile."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for journal in checkpoint_dir.glob("*.tiles.jsonl"):
            for line in journal.read_text().splitlines():
                try:
                    if json.loads(line).get("kind") == "tile":
                        return
                except json.JSONDecodeError:
                    continue
        time.sleep(0.02)
    raise AssertionError(f"no tile journaled under {checkpoint_dir}")


def cold_reference(tmp_path: Path, vertices) -> dict:
    """The job's result computed outside any daemon (the golden copy)."""
    submission = validate_submission({
        "clips": {"bar": vertices}, "method": "partition",
        "window_nm": 100.0, "checkpoint": True,
    })
    record = JobRecord(job_id="job-c0ffee00", spec=submission)
    record.attempts = 1
    return execute_job(
        record, JobPaths.for_job(tmp_path / "cold", record.job_id)
    )


def spawn_daemon(
    state_dir: Path, cwd: Path, *extra_args: str, env_extra=None
) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if env_extra:
        env.update(env_extra)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir), "--workers", "1", *extra_args],
        cwd=cwd, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


@pytest.mark.timeout(300)
class TestKillRecovery:
    def test_sigkill_then_restart_bit_identical(self, tmp_path, chaos_plan):
        """Kill the daemon mid-tiled-job; recovery must replay exactly."""
        reference = cold_reference(tmp_path, LONG_BAR)
        state_dir = tmp_path / "state"
        daemon = spawn_daemon(state_dir, tmp_path)
        try:
            wait_for_daemon(state_dir, timeout_s=30)
            client = ServiceClient(state_dir)
            job_id = client.submit(
                {"bar": LONG_BAR}, method="partition", window_nm=100.0
            )
            paths = JobPaths.for_job(state_dir, job_id)
            # Kill once at least one tile is journaled — mid-job, with
            # settled work worth resuming.
            wait_for_first_tile(paths.checkpoint_dir)
            daemon.kill()
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

        assert_no_torn_state(state_dir)

        daemon2 = spawn_daemon(state_dir, tmp_path)
        try:
            wait_for_daemon(state_dir, timeout_s=30)
            client = ServiceClient(state_dir)
            finished = client.wait(job_id, timeout_s=120)
            assert finished["state"] == "done", chaos_plan
            result = client.result(job_id)
            assert result["resumed"] is True
            assert result["clips"]["bar"]["shots"] == \
                reference["clips"]["bar"]["shots"], chaos_plan
            client.shutdown("drain")
            daemon2.wait(timeout=60)
        finally:
            if daemon2.poll() is None:
                daemon2.kill()
                daemon2.wait(timeout=30)


@pytest.mark.timeout(300)
class TestTruncatedJournalRecovery:
    def test_torn_journal_tail_recomputes_bit_identical(
        self, tmp_path, chaos_plan
    ):
        """A torn tail (crash mid-append) must not poison recovery."""
        reference = cold_reference(tmp_path, LONG_BAR)
        state_dir = tmp_path / "state"

        async def interrupt_mid_job() -> str:
            service = FractureService(state_dir, workers=1)
            await service.start()
            response = await request(
                service, windowed_bar_payload(LONG_BAR)
            )
            job_id = response["job_id"]
            paths = JobPaths.for_job(state_dir, job_id)

            def tile_journaled() -> bool:
                for journal in paths.checkpoint_dir.glob("*.tiles.jsonl"):
                    for line in journal.read_text().splitlines():
                        try:
                            if json.loads(line).get("kind") == "tile":
                                return True
                        except json.JSONDecodeError:
                            continue
                return False

            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not tile_journaled():
                await asyncio.sleep(0.02)
            await service.stop("interrupt")  # checkpoint + requeue
            return job_id

        job_id = asyncio.run(interrupt_mid_job())

        paths = JobPaths.for_job(state_dir, job_id)
        journal = next(iter(paths.checkpoint_dir.glob("*.tiles.jsonl")))
        truncate_tail(journal, chaos_plan.seed)  # torn mid-line, seeded

        async def recover() -> dict:
            service = FractureService(state_dir, workers=1)
            await service.start()
            try:
                job = await wait_settled(service, job_id, timeout_s=120)
                assert job["state"] == "done", chaos_plan
                result = json.loads(paths.result_json.read_text())
                return result
            finally:
                await service.stop("drain")

        result = asyncio.run(recover())
        assert result["clips"]["bar"]["shots"] == \
            reference["clips"]["bar"]["shots"], chaos_plan


@pytest.mark.timeout(300)
class TestDiskFull:
    def test_disk_full_fails_typed_then_freed_disk_succeeds(self, tmp_path):
        """Shimmed zero free space: typed failure, no torn bytes, and a
        healthy job right after the space comes back."""

        async def main():
            service = FractureService(
                tmp_path / "state", workers=1,
                limits=ServiceLimits(disk_floor_bytes=1024 * 1024),
            )
            await service.start()
            try:
                with disk_full(0):
                    response = await request(
                        service, windowed_bar_payload(SHORT_BAR)
                    )
                    assert response["ok"]  # admission is not a disk guard
                    starved = await wait_settled(
                        service, response["job_id"], timeout_s=60
                    )
                    assert starved["state"] == "failed"
                    assert starved["error_code"] == "disk_full"
                    stats = await request(service, {"op": "stats"})
                    assert stats["guard"]["counters"]["disk_full"] == 1
                assert_no_torn_state(tmp_path / "state")
                # Space back: the very next job must succeed.
                response = await request(
                    service,
                    windowed_bar_payload(SHORT_BAR, name="after-free"),
                )
                healthy = await wait_settled(
                    service, response["job_id"], timeout_s=60
                )
                assert healthy["state"] == "done"
            finally:
                await service.stop("drain")

        asyncio.run(main())


@pytest.mark.timeout(300)
class TestOverBudget:
    def stuck_runner_factory(self):
        def stuck_runner(record, paths, caches, control):
            if record.spec.get("method") == "partition":
                # The degraded baseline "succeeds" instantly.
                return {"totals": {"clips": 1, "shots": 1,
                                   "feasible": True, "cached_clips": 0}}
            while True:
                control.raise_if_stopped()
                time.sleep(0.01)
        return stuck_runner

    def test_over_budget_killed_fast_healthy_job_unharmed(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=2,
                job_runner=self.stuck_runner_factory(),
                limits=ServiceLimits(
                    job_wall_budget_s=0.3, watchdog_interval_s=0.1
                ),
            )
            await service.start()
            try:
                hog = await request(service, {"op": "submit", "job": {
                    "clips": {"sq": SQUARE}, "method": "ours",
                    "checkpoint": False,
                }})
                healthy = await request(service, {"op": "submit", "job": {
                    "clips": {"sq": SQUARE}, "method": "partition",
                    "checkpoint": False,
                }})
                started = time.monotonic()
                hog_job = await wait_settled(
                    service, hog["job_id"], timeout_s=10
                )
                settled_after = time.monotonic() - started
                assert hog_job["state"] == "failed"
                assert hog_job["error_code"] == "over_budget"
                assert "wall" in hog_job["error"]
                # Budget 0.3s + one watchdog interval 0.1s + slack: the
                # kill must land promptly, not at some coarse sweep.
                assert settled_after < 5.0
                healthy_job = await wait_settled(
                    service, healthy["job_id"], timeout_s=10
                )
                assert healthy_job["state"] == "done"
                stats = await request(service, {"op": "stats"})
                assert stats["guard"]["counters"]["over_budget"] == 1
            finally:
                await service.stop("drain")

        asyncio.run(main())

    def test_degrade_over_budget_requeues_on_baseline(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1,
                job_runner=self.stuck_runner_factory(),
                limits=ServiceLimits(
                    job_wall_budget_s=0.2, watchdog_interval_s=0.05,
                    degrade_over_budget=True,
                ),
            )
            await service.start()
            try:
                submitted = await request(service, {"op": "submit", "job": {
                    "clips": {"sq": SQUARE}, "method": "ours",
                    "checkpoint": False,
                }})
                job = await wait_settled(
                    service, submitted["job_id"], timeout_s=15
                )
                assert job["state"] == "done"  # finished on the baseline
                assert job["spec"]["method"] == "partition"
                assert job["spec"]["degraded_from"] == "ours"
                assert job["attempts"] == 2
                stats = await request(service, {"op": "stats"})
                assert stats["guard"]["counters"]["degraded"] == 1
            finally:
                await service.stop("drain")

        asyncio.run(main())


@pytest.mark.timeout(300)
class TestStallAndFlood:
    def test_stalled_client_never_blocks_healthy_traffic(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1,
                job_runner=lambda record, paths, caches, control: {
                    "totals": {"clips": 1, "shots": 0, "feasible": True,
                               "cached_clips": 0}},
                limits=ServiceLimits(read_deadline_s=0.3),
            )
            await service.start()
            loop = asyncio.get_running_loop()
            try:
                def stall_and_collect() -> bytes:
                    with stalled_request(
                        service.socket_path, {"op": "ping"}
                    ) as stalled:
                        return stalled.response()

                stall = loop.run_in_executor(None, stall_and_collect)
                # While the staller squats, a healthy client round-trips.
                submitted = await request(service, {"op": "submit", "job": {
                    "clips": {"sq": SQUARE}, "method": "partition",
                    "checkpoint": False,
                }})
                job = await wait_settled(
                    service, submitted["job_id"], timeout_s=10
                )
                assert job["state"] == "done"
                raw = await asyncio.wait_for(stall, timeout=10)
                torn = decode_line(raw)
                assert torn["reason"] == "read_timeout"
                assert service.guard_counters["read_timeouts"] == 1
            finally:
                await service.stop("drain")

        asyncio.run(main())

    def test_flood_sheds_load_healthy_client_lands(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1,
                job_runner=lambda record, paths, caches, control: {
                    "totals": {"clips": 1, "shots": 0, "feasible": True,
                               "cached_clips": 0}},
                limits=ServiceLimits(rate_per_s=0.001, rate_burst=5),
            )
            await service.start()
            loop = asyncio.get_running_loop()
            socket_path = service.socket_path

            def one_submit(client: ServiceClient, name: str):
                return client.submit(
                    {"sq": SQUARE}, method="partition", name=name,
                    checkpoint=False, idempotent=False,
                )

            try:
                attacker = ServiceClient(
                    tmp_path, client_id="attacker", timeout_s=10
                )
                tally = await loop.run_in_executor(
                    None,
                    lambda: flood_submits(
                        lambda i: one_submit(attacker, f"flood-{i}"), 50
                    ),
                )
                assert tally["ok"] == 5  # the burst
                assert tally["rate_limited"] == 45
                victim = ServiceClient(
                    tmp_path, client_id="victim", timeout_s=10
                )
                job_id = await loop.run_in_executor(
                    None, lambda: one_submit(victim, "victim")
                )
                job = await wait_settled(service, job_id, timeout_s=10)
                assert job["state"] == "done"
                assert socket_path.exists()
            finally:
                await service.stop("drain")

        asyncio.run(main())


class TestCorruptCacheUnderDaemon:
    def test_corrupt_disk_entry_quarantined_and_recomputed(
        self, tmp_path, chaos_plan
    ):
        """A flipped-bytes cache entry must be quarantined, not served."""

        async def main():
            from repro.service.caches import WarmCaches

            store = tmp_path / "cache"
            caches = WarmCaches(persist_dir=store)
            service = FractureService(
                tmp_path / "state", workers=1, caches=caches
            )
            await service.start()
            try:
                first = await request(service, {"op": "submit", "job": {
                    "clips": {"sq": SQUARE}, "method": "partition",
                    "checkpoint": False,
                }})
                job = await wait_settled(service, first["job_id"], 60)
                assert job["state"] == "done"
                entries = list(store.glob("*.json"))
                assert entries
                offsets = corrupt_bytes(entries[0], chaos_plan.seed)
                assert offsets
                caches.results.clear()  # force the (corrupt) disk path
                second = await request(service, {"op": "submit", "job": {
                    "clips": {"sq": SQUARE}, "method": "partition",
                    "checkpoint": False, "name": "retry",
                }})
                job2 = await wait_settled(service, second["job_id"], 60)
                assert job2["state"] == "done", chaos_plan
                stats = await request(service, {"op": "stats"})
                cache_stats = stats["caches"]["result"]
                assert cache_stats["corrupt_quarantined"] == 1
                assert list(store.glob("*.json.bad")), chaos_plan
            finally:
                await service.stop("drain")

        asyncio.run(main())


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        a, b = ChaosPlan(CHAOS_SEED), ChaosPlan(CHAOS_SEED)
        assert a.events() == b.events()
        assert ChaosPlan(CHAOS_SEED + 1).events() != a.events()

    def test_corruption_is_seed_deterministic(self, tmp_path):
        for name in ("a", "b"):
            (tmp_path / name).write_bytes(bytes(range(256)))
        off_a = corrupt_bytes(tmp_path / "a", CHAOS_SEED)
        off_b = corrupt_bytes(tmp_path / "b", CHAOS_SEED)
        assert off_a == off_b
        assert (tmp_path / "a").read_bytes() == (tmp_path / "b").read_bytes()
