"""Protocol edge cases against a *running* daemon: the hostile-client
surface.  Oversized lines, torn frames, floods, duplicate fingerprints
— each must earn a typed response (or a reclaimed connection) without
consuming a queue slot or wedging the daemon for its next client.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.guard import ServiceLimits
from repro.service.protocol import decode_line, encode_line
from repro.service.server import FractureService

CLIPS = {"sq": [[0, 0], [40, 0], [40, 40], [0, 40]]}


def submit_payload(priority: int = 0, **overrides) -> dict:
    job = {"clips": CLIPS, "method": "partition", "priority": priority,
           "checkpoint": False, **overrides}
    return {"op": "submit", "job": job}


async def request(service: FractureService, payload: dict) -> dict:
    reader, writer = await asyncio.open_unix_connection(
        str(service.socket_path)
    )
    try:
        writer.write(encode_line(payload))
        await writer.drain()
        return decode_line(await reader.readline())
    finally:
        writer.close()


def instant_runner(record, paths, caches, control):
    return {"totals": {"clips": 1, "shots": 0, "feasible": True,
                       "cached_clips": 0}}


def run(coro):
    return asyncio.run(coro)


async def make_service(tmp_path, **kwargs) -> FractureService:
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("job_runner", instant_runner)
    service = FractureService(tmp_path, **kwargs)
    await service.start()
    return service


class TestLineAndFrameEdges:
    def test_oversized_line_rejected_not_fatal(self, tmp_path):
        async def main():
            service = await make_service(
                tmp_path, limits=ServiceLimits(max_line_bytes=4096)
            )
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(service.socket_path)
                )
                giant = submit_payload(name="x" * 8192)
                writer.write(encode_line(giant))
                await writer.drain()
                response = decode_line(await reader.readline())
                assert not response["ok"]
                assert response["code"] == "bad_request"
                assert "too long" in response["error"]
                writer.close()
                # The daemon survives and serves the next client.
                pong = await request(service, {"op": "ping"})
                assert pong["ok"]
            finally:
                await service.stop("drain")

        run(main())

    def test_torn_frame_hits_read_deadline(self, tmp_path):
        async def main():
            service = await make_service(
                tmp_path,
                limits=ServiceLimits(read_deadline_s=0.2, idle_timeout_s=30),
            )
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(service.socket_path)
                )
                # Half a request, no newline, then stall.
                blob = encode_line({"op": "ping"})
                writer.write(blob[: len(blob) // 2])
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                response = decode_line(line)
                assert not response["ok"]
                assert response["reason"] == "read_timeout"
                writer.close()
                assert service.guard_counters["read_timeouts"] == 1
                pong = await request(service, {"op": "ping"})
                assert pong["ok"]
            finally:
                await service.stop("drain")

        run(main())

    def test_idle_connection_reclaimed_quietly(self, tmp_path):
        async def main():
            service = await make_service(
                tmp_path, limits=ServiceLimits(idle_timeout_s=0.2)
            )
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(service.socket_path)
                )
                # No bytes at all: the daemon hangs up after the idle
                # window with no error frame.
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                assert line == b""
                writer.close()
                assert service.guard_counters["idle_closed"] == 1
            finally:
                await service.stop("drain")

        run(main())

    def test_garbage_and_unknown_ops_are_typed(self, tmp_path):
        async def main():
            service = await make_service(tmp_path)
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(service.socket_path)
                )
                writer.write(b"{ not json }\n")
                await writer.drain()
                bad = decode_line(await reader.readline())
                assert not bad["ok"] and bad["code"] == "bad_request"
                # Same connection stays usable after a bad line.
                writer.write(encode_line({"op": "frobnicate"}))
                await writer.drain()
                unknown = decode_line(await reader.readline())
                assert unknown["code"] == "unknown_op"
                writer.close()
            finally:
                await service.stop("drain")

        run(main())


class TestAdmissionOverTheWire:
    def test_rejected_submission_consumes_no_queue_slot(self, tmp_path):
        async def main():
            service = await make_service(
                tmp_path,
                max_queue_depth=2,
                limits=ServiceLimits(max_clips=1),
            )
            try:
                fat = submit_payload(clips={
                    "a": CLIPS["sq"], "b": CLIPS["sq"],
                })
                rejected = await request(service, fat)
                assert not rejected["ok"]
                assert rejected["code"] == "job_rejected"
                assert rejected["reason"] == "too_many_clips"
                stats = await request(service, {"op": "stats"})
                assert stats["queued"] == 0
                assert stats["jobs_by_state"] == {}  # no record created
                assert stats["guard"]["counters"]["rejected"] == 1
                # A sane job still lands.
                accepted = await request(service, submit_payload())
                assert accepted["ok"]
            finally:
                await service.stop("drain")

        run(main())

    def test_malformed_submit_consumes_no_queue_slot(self, tmp_path):
        async def main():
            service = await make_service(tmp_path, max_queue_depth=1)
            try:
                bad = await request(
                    service, {"op": "submit", "job": {"clips": {}}}
                )
                assert not bad["ok"] and bad["code"] == "bad_request"
                stats = await request(service, {"op": "stats"})
                assert stats["queued"] == 0 and stats["jobs_by_state"] == {}
            finally:
                await service.stop("drain")

        run(main())


class TestIdempotentResubmission:
    def test_duplicate_request_fp_returns_original_job(self, tmp_path):
        async def main():
            service = await make_service(tmp_path)
            try:
                payload = {**submit_payload(), "request_fp": "f" * 64}
                first = await request(service, payload)
                assert first["ok"] and "deduplicated" not in first
                second = await request(service, payload)
                assert second["ok"]
                assert second["deduplicated"] is True
                assert second["job_id"] == first["job_id"]
                stats = await request(service, {"op": "stats"})
                assert stats["guard"]["counters"]["deduplicated"] == 1
                # Exactly one job ever existed.
                listing = await request(service, {"op": "list"})
                assert len(listing["jobs"]) == 1
            finally:
                await service.stop("drain")

        run(main())

    def test_without_fp_identical_payloads_stay_distinct(self, tmp_path):
        async def main():
            service = await make_service(tmp_path)
            try:
                first = await request(service, submit_payload())
                second = await request(service, submit_payload())
                assert first["job_id"] != second["job_id"]
            finally:
                await service.stop("drain")

        run(main())

    def test_dedup_survives_daemon_restart(self, tmp_path):
        async def main():
            service = await make_service(tmp_path)
            payload = {**submit_payload(), "request_fp": "a" * 64}
            first = await request(service, payload)
            await request(
                service, {"op": "wait", "job_id": first["job_id"],
                          "timeout_s": 10},
            )
            await service.stop("drain")
            # New daemon, same state dir: the fingerprint index is
            # rebuilt from job records, so the retry still dedupes.
            service = await make_service(tmp_path)
            try:
                again = await request(service, payload)
                assert again["deduplicated"] is True
                assert again["job_id"] == first["job_id"]
            finally:
                await service.stop("drain")

        run(main())


class TestFloodAndFairShare:
    def test_flood_rate_limited_but_healthy_client_lands(self, tmp_path):
        async def main():
            service = await make_service(
                tmp_path,
                limits=ServiceLimits(rate_per_s=0.001, rate_burst=3),
            )
            try:
                codes = []
                for i in range(10):
                    response = await request(service, {
                        **submit_payload(name=f"flood-{i}"),
                        "client_id": "attacker",
                    })
                    codes.append(response.get("code", "ok"))
                assert codes.count("ok") == 3  # the burst
                assert codes.count("rate_limited") == 7
                # A different client is untouched by the attacker's spend.
                healthy = await request(service, {
                    **submit_payload(name="healthy"), "client_id": "victim",
                })
                assert healthy["ok"]
                stats = await request(service, {"op": "stats"})
                assert stats["guard"]["counters"]["rate_limited"] == 7
            finally:
                await service.stop("drain")

        run(main())

    def test_fair_share_caps_one_client_queue_hold(self, tmp_path):
        async def main():
            # workers=1 with a gate-free instant runner drains fast, so
            # use a runner that never finishes to keep the queue full.
            import threading

            gate = threading.Event()

            def stuck_runner(record, paths, caches, control):
                while not gate.wait(0.01):
                    control.raise_if_stopped()
                return {"totals": {}}

            service = await make_service(
                tmp_path,
                job_runner=stuck_runner,
                max_queue_depth=10,
                limits=ServiceLimits(queue_share=0.2),  # cap = 2 of 10
            )
            try:
                codes = []
                for i in range(5):
                    response = await request(service, {
                        **submit_payload(name=f"hog-{i}"),
                        "client_id": "hog",
                    })
                    codes.append(response.get("code", "ok"))
                # First fills the lone worker, next two queue, rest deferred.
                assert codes.count("ok") == 3
                assert codes.count("rate_limited") == 2
                other = await request(service, {
                    **submit_payload(name="other"), "client_id": "other",
                })
                assert other["ok"]  # the cap is per client, not global
                stats = await request(service, {"op": "stats"})
                assert stats["guard"]["counters"]["fair_share_deferred"] == 2
            finally:
                gate.set()
                await service.stop("drain")

        run(main())
