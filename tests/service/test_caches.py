"""Warm caches: fingerprints, result cache bounds, profile-bank wiring."""

from __future__ import annotations

import numpy as np

from repro.baselines import PartitionFracturer
from repro.ebeam.intensity_map import IntensityMap, get_profile_bank
from repro.mask.constraints import FractureSpec
from repro.service.caches import ResultCache, WarmCaches, fingerprint_request

CLIP = [[0.0, 0.0], [40.0, 0.0], [40.0, 40.0], [0.0, 40.0]]


class TestFingerprint:
    def test_deterministic(self):
        a = fingerprint_request(CLIP, {"sigma": 6.25}, "ours", None)
        b = fingerprint_request(CLIP, {"sigma": 6.25}, "ours", None)
        assert a == b

    def test_sensitive_to_every_result_affecting_input(self):
        base = fingerprint_request(CLIP, {}, "ours", None)
        moved = [[0.0, 0.0], [41.0, 0.0], [41.0, 40.0], [0.0, 40.0]]
        assert fingerprint_request(moved, {}, "ours", None) != base
        assert fingerprint_request(CLIP, {"sigma": 7.0}, "ours", None) != base
        assert fingerprint_request(CLIP, {}, "partition", None) != base
        assert fingerprint_request(CLIP, {}, "ours", 300.0) != base

    def test_spec_key_order_irrelevant(self):
        a = fingerprint_request(CLIP, {"sigma": 6.25, "rho": 0.5}, "ours", None)
        b = fingerprint_request(CLIP, {"rho": 0.5, "sigma": 6.25}, "ours", None)
        assert a == b


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"shots": []})
        assert cache.get("k") == {"shots": []}
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_eviction_is_oldest_first(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        cache.put("c", {"n": 3})
        assert cache.get("a") is None  # evicted
        assert cache.get("b") is not None
        assert cache.get("c") is not None

    def test_put_is_idempotent(self):
        cache = ResultCache()
        cache.put("k", {"first": True})
        cache.put("k", {"second": True})
        assert cache.get("k") == {"first": True}


class TestWarmCaches:
    def test_install_publishes_profile_bank(self):
        warm = WarmCaches()
        assert get_profile_bank() is None
        with warm:
            assert get_profile_bank() is warm.profiles
        assert get_profile_bank() is None

    def test_second_fracture_attaches_warm(self, spec, rect_shape):
        warm = WarmCaches()
        with warm:
            PartitionFracturer().fracture(rect_shape, spec)
            first = warm.stats()["profile"]
            assert first["attaches"] >= 1
            assert first["profiles"] > 0
            PartitionFracturer().fracture(rect_shape, spec)
            second = warm.stats()["profile"]
            assert second["warm_attaches"] >= 1
            assert second["layouts"] == first["layouts"]

    def test_shared_cache_gives_identical_intensity(self, spec, rect_shape):
        """Warm profiles must not change the physics, only skip work."""
        shots = PartitionFracturer().fracture_shots(rect_shape, spec)
        cold = IntensityMap(rect_shape.grid, spec.sigma)
        for shot in shots:
            cold.add(shot)
        with WarmCaches():
            warm_a = IntensityMap(rect_shape.grid, spec.sigma)
            for shot in shots:
                warm_a.add(shot)
            # Second map attaches to the already-warm shared cache.
            warm_b = IntensityMap(rect_shape.grid, spec.sigma)
            for shot in shots:
                warm_b.add(shot)
        np.testing.assert_array_equal(cold.total, warm_a.total)
        np.testing.assert_array_equal(cold.total, warm_b.total)


class TestLibraryPromotion:
    """PR 8: the service cache is the library cache — same object, same key."""

    def test_result_cache_is_the_library_fracture_cache(self):
        from repro.fracture.cache import FractureCache

        assert ResultCache is FractureCache

    def test_fingerprint_request_is_canonical_fingerprint(self):
        # Single fingerprint function in the tree: the service alias and
        # the library function cannot drift apart.
        from repro.fracture.cache import canonical_fingerprint

        assert fingerprint_request is canonical_fingerprint

    def test_service_and_library_keys_agree(self):
        from repro.fracture.cache import fingerprint_polygon
        from repro.geometry.polygon import Polygon

        vertices = [[0.0, 0.0], [60.0, 0.0], [60.0, 40.0], [0.0, 40.0]]
        spec = FractureSpec()
        service_key = fingerprint_request(vertices, spec, "partition", None)
        library_key, offset = fingerprint_polygon(
            Polygon(vertices), spec, "partition", None
        )
        assert service_key == library_key
        assert offset == (0.0, 0.0)

    def test_warm_caches_persist_dir(self, tmp_path):
        warm = WarmCaches(persist_dir=tmp_path / "store")
        warm.results.put("fp", {"shots": [], "shot_count": 0})
        assert (tmp_path / "store" / "fp.json").exists()
        cold = WarmCaches(persist_dir=tmp_path / "store")
        assert cold.results.get("fp") == {"shots": [], "shot_count": 0}
