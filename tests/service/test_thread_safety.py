"""Regression tests for shared-state races the daemon depends on.

Concurrent service jobs share the default erf LUT and the installed
profile bank.  Before the locks landed, two jobs racing the lazy
default-LUT build could each construct a table (one leaked) or, worse,
observe a half-swapped module global during a ``set_default_lut``.
These tests hammer the same interleavings from many threads; they are
timing-sensitive by nature, so they assert invariants (exactly one
table, no exceptions, bit-identical physics) rather than schedules.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.ebeam.intensity_map import (
    IntensityMap,
    ProfileBank,
    get_profile_bank,
    set_profile_bank,
)
from repro.ebeam.lut import ErfLookupTable, default_lut, set_default_lut

THREADS = 16


class TestDefaultLutRaces:
    def test_concurrent_first_build_yields_one_table(self):
        previous = set_default_lut(None)  # force the lazy-build path
        try:
            barrier = threading.Barrier(THREADS)

            def build() -> ErfLookupTable:
                barrier.wait()  # maximise the racing window
                return default_lut()

            with ThreadPoolExecutor(THREADS) as pool:
                tables = list(pool.map(lambda _: build(), range(THREADS)))
            assert all(table is tables[0] for table in tables)
        finally:
            set_default_lut(previous)

    def test_swap_race_never_exposes_torn_state(self):
        """Readers racing set_default_lut see a whole table, old or new."""
        previous = set_default_lut(None)
        tables = [ErfLookupTable(samples=2001) for _ in range(4)]
        candidates = {id(t) for t in tables}
        stop = threading.Event()
        seen_foreign: list[int] = []

        def reader() -> None:
            while not stop.is_set():
                lut = default_lut()
                # Every observed table is either one of ours or a
                # freshly lazy-built default — never garbage.
                if id(lut) not in candidates and lut.key != (5.0, 20001):
                    seen_foreign.append(id(lut))
                float(lut(0.5))  # usable, not half-initialised

        try:
            readers = [threading.Thread(target=reader) for _ in range(4)]
            for thread in readers:
                thread.start()
            for _ in range(50):
                for table in tables:
                    set_default_lut(table)
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
                assert not thread.is_alive()
            assert seen_foreign == []
        finally:
            stop.set()
            set_default_lut(previous)


class TestProfileBankRaces:
    def test_concurrent_attach_same_layout_shares_one_cache(self, spec, rect_shape):
        bank = ProfileBank()
        key = ProfileBank.bank_key(rect_shape.grid, spec.sigma, default_lut())
        barrier = threading.Barrier(THREADS)

        def attach() -> int:
            barrier.wait()
            return id(bank.cache_for(key))

        with ThreadPoolExecutor(THREADS) as pool:
            cache_ids = set(pool.map(lambda _: attach(), range(THREADS)))
        assert len(cache_ids) == 1
        assert bank.layouts == 1
        assert bank.attach_count == THREADS

    def test_install_swap_race_is_atomic(self):
        banks = [ProfileBank() for _ in range(3)]
        allowed = {id(bank) for bank in banks} | {id(None)}
        stop = threading.Event()
        bad: list[int] = []

        def reader() -> None:
            while not stop.is_set():
                bank = get_profile_bank()
                if id(bank) not in allowed:
                    bad.append(id(bank))

        previous = set_profile_bank(None)
        try:
            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            for _ in range(100):
                for bank in banks:
                    set_profile_bank(bank)
                set_profile_bank(None)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
                assert not thread.is_alive()
            assert bad == []
        finally:
            stop.set()
            set_profile_bank(previous)

    def test_parallel_maps_on_shared_bank_stay_bit_identical(
        self, spec, rect_shape
    ):
        """Jobs racing on one warm cache must not corrupt the physics."""
        from repro.baselines import PartitionFracturer

        shots = PartitionFracturer().fracture_shots(rect_shape, spec)
        cold = IntensityMap(rect_shape.grid, spec.sigma)
        for shot in shots:
            cold.add(shot)

        previous = set_profile_bank(ProfileBank())
        try:
            def run_map(_: int) -> np.ndarray:
                shared = IntensityMap(rect_shape.grid, spec.sigma)
                for shot in shots:
                    shared.add(shot)
                return shared.total

            with ThreadPoolExecutor(8) as pool:
                totals = list(pool.map(run_map, range(8)))
            for total in totals:
                np.testing.assert_array_equal(cold.total, total)
        finally:
            set_profile_bank(previous)
