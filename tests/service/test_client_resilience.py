"""Client-side resilience: typed transport errors, no fd leaks,
backoff, circuit breaker, idempotent resubmission.

The daemon here is either absent, a misbehaving fake (drops
connections mid-frame), or a real in-process :class:`FractureService`
— whichever matches the failure being pinned.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.service.client import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import encode_line
from repro.service.server import FractureService

CLIPS = {"sq": [[0, 0], [40, 0], [40, 40], [0, 40]]}


class DroppingServer:
    """A unix-socket server that hangs up mid-response on every request.

    ``partial`` bytes of a valid response are sent before the hangup,
    so the client sees a torn frame, not a clean refusal.
    """

    def __init__(self, socket_path, partial: int = 10):
        self.socket_path = str(socket_path)
        self.partial = partial
        self.accepted = 0
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(self.socket_path)
        self._server.listen(8)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        self._server.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                self.accepted += 1
                try:
                    conn.settimeout(2.0)
                    conn.recv(65536)  # read the request line (mostly)
                    response = encode_line({"ok": True, "job_id": "job-x"})
                    conn.sendall(response[: self.partial])  # torn frame
                except OSError:
                    pass
                # closing here = dropped mid-frame

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5)
        self._server.close()


class CountingSocket(socket.socket):
    """socket.socket that records every instance and its close state."""

    instances: list["CountingSocket"] = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        CountingSocket.instances.append(self)
        self.closed = False

    def close(self):
        self.closed = True
        super().close()


@pytest.fixture
def counting_sockets(monkeypatch):
    CountingSocket.instances = []
    monkeypatch.setattr(socket, "socket", CountingSocket)
    yield CountingSocket.instances


def fast_client(state_dir, **kwargs) -> ServiceClient:
    kwargs.setdefault("timeout_s", 5.0)
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=3, base_delay_s=0.01, jitter=0.0)
    )
    kwargs.setdefault(
        "breaker", CircuitBreaker(failure_threshold=100, reset_after_s=0.05)
    )
    return ServiceClient(state_dir, **kwargs)


class TestTransportTyping:
    def test_no_daemon_is_typed(self, tmp_path):
        client = fast_client(tmp_path)
        with pytest.raises(ServiceError) as caught:
            client.ping()
        assert caught.value.code == "no_daemon"

    def test_mid_frame_drop_is_typed_not_protocol_error(self, tmp_path):
        server = DroppingServer(tmp_path / "daemon.sock")
        try:
            client = fast_client(tmp_path)
            with pytest.raises(ServiceError) as caught:
                client.ping()
            assert caught.value.code == "connection_dropped"
            assert "mid-response" in str(caught.value)
            assert server.accepted == 3  # all retry attempts burned
        finally:
            server.close()

    def test_no_socket_leak_across_error_paths(
        self, tmp_path, counting_sockets
    ):
        server = DroppingServer(tmp_path / "daemon.sock")
        try:
            client = fast_client(tmp_path)
            for _ in range(5):
                with pytest.raises(ServiceError):
                    client.ping()
        finally:
            server.close()
        client_sockets = [
            s for s in counting_sockets if s not in (server._server,)
        ]
        assert client_sockets  # the patch saw the client's sockets
        assert all(s.closed for s in client_sockets)

    def test_no_socket_leak_when_daemon_absent(
        self, tmp_path, counting_sockets
    ):
        client = fast_client(tmp_path)
        with pytest.raises(ServiceError):
            client.ping()
        assert counting_sockets and all(s.closed for s in counting_sockets)


class TestRetryAndBreaker:
    def test_backoff_delays_grow_and_cap(self):
        import random

        policy = RetryPolicy(
            attempts=5, base_delay_s=0.1, max_delay_s=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay_s(a, rng) for a in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_band(self):
        import random

        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        rng = random.Random(7)
        for _ in range(100):
            delay = policy.delay_s(0, rng)
            assert 0.05 <= delay <= 0.1

    def test_breaker_opens_half_opens_closes(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_after_s=10.0)
        assert breaker.state == "closed"
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=1.0)  # one failure: still closed
        breaker.record_failure(now=1.0)
        assert breaker.state == "open"
        assert not breaker.allow(now=5.0)  # open: fail fast
        assert breaker.allow(now=12.0)  # half-open probe admitted
        assert not breaker.allow(now=12.0)  # ...but only one
        breaker.record_failure(now=12.0)  # probe failed: re-open
        assert not breaker.allow(now=13.0)
        assert breaker.allow(now=23.0)  # next probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow(now=23.0)

    def test_client_fails_fast_when_circuit_open(self, tmp_path):
        client = ServiceClient(
            tmp_path,
            retry=RetryPolicy(attempts=1),
            breaker=CircuitBreaker(failure_threshold=1, reset_after_s=60.0),
        )
        with pytest.raises(ServiceError) as first:
            client.ping()
        assert first.value.code == "no_daemon"  # opened the circuit
        with pytest.raises(ServiceError) as second:
            client.ping()
        assert second.value.code == "circuit_open"  # no socket touched

    def test_error_responses_do_not_trip_breaker(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1,
                job_runner=lambda *a: {"totals": {}},
            )
            await service.start()
            try:
                client = ServiceClient(
                    tmp_path,
                    breaker=CircuitBreaker(
                        failure_threshold=1, reset_after_s=60.0
                    ),
                )
                for _ in range(3):
                    with pytest.raises(ServiceError) as caught:
                        await asyncio.get_running_loop().run_in_executor(
                            None, client.status, "job-ffffffff"
                        )
                    # unknown_job is an *answer*: the breaker stays shut.
                    assert caught.value.code == "unknown_job"
            finally:
                await service.stop("drain")

        asyncio.run(main())


class TestIdempotentSubmit:
    def test_resubmission_after_lost_ack_returns_same_job(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1,
                job_runner=lambda *a: {"totals": {}},
            )
            await service.start()
            loop = asyncio.get_running_loop()
            try:
                client = fast_client(tmp_path)
                # The "lost ack" retry is the same call made twice.
                first = await loop.run_in_executor(
                    None, lambda: client.submit(CLIPS, method="partition")
                )
                second = await loop.run_in_executor(
                    None, lambda: client.submit(CLIPS, method="partition")
                )
                assert first == second
                third = await loop.run_in_executor(
                    None,
                    lambda: client.submit(
                        CLIPS, method="partition", idempotent=False
                    ),
                )
                assert third != first  # opt-out forces a distinct job
                # Different name = different job even when idempotent.
                named = await loop.run_in_executor(
                    None,
                    lambda: client.submit(
                        CLIPS, method="partition", name="other"
                    ),
                )
                assert named not in (first, third)
            finally:
                await service.stop("drain")

        asyncio.run(main())
