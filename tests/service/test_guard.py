"""Guard-layer units: limits, admission, rate limiting, watchdog, disk.

Everything here drives :mod:`repro.service.guard` and the disk
primitives directly — no daemon, no sockets — so each rule is pinned
in isolation before the integration suites compose them.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.fracture.cache import FractureCache, evict_lru
from repro.obs import (
    DiskFullError,
    disk_free_bytes,
    ensure_disk_space,
    set_disk_free_override,
)
from repro.service.guard import (
    AdmissionError,
    ClientRateLimiter,
    JobWatchdog,
    ServiceLimits,
    TokenBucket,
    validate_admission,
)
from repro.service.jobs import validate_submission

SQUARE = [[0, 0], [40, 0], [40, 40], [0, 40]]


def valid_spec(**overrides) -> dict:
    job = {"clips": {"sq": SQUARE}, "method": "partition", **overrides}
    return validate_submission(job)


@pytest.fixture(autouse=True)
def _reset_disk_override():
    yield
    set_disk_free_override(None)


class TestServiceLimits:
    def test_defaults_validate(self):
        assert ServiceLimits().validated() is not None

    @pytest.mark.parametrize("field,value", [
        ("max_clips", 0),
        ("max_clip_vertices", -1),
        ("watchdog_interval_s", 0.0),
        ("read_deadline_s", -2.0),
        ("rate_per_s", 0.0),
        ("job_wall_budget_s", -1.0),
        ("job_rss_budget_bytes", 0),
        ("disk_floor_bytes", -1),
    ])
    def test_nonsense_values_rejected(self, field, value):
        limits = ServiceLimits(**{field: value})
        with pytest.raises(ValueError, match=field):
            limits.validated()

    def test_rate_burst_and_shares(self):
        with pytest.raises(ValueError, match="rate_burst"):
            ServiceLimits(rate_burst=0).validated()
        with pytest.raises(ValueError, match="queue_share"):
            ServiceLimits(queue_share=1.5).validated()
        with pytest.raises(ValueError, match="priority_min"):
            ServiceLimits(priority_min=5, priority_max=-5).validated()

    def test_to_dict_round_trips_every_field(self):
        snapshot = ServiceLimits(max_clips=7).to_dict()
        assert snapshot["max_clips"] == 7
        assert "job_wall_budget_s" in snapshot


class TestAdmission:
    def test_valid_spec_passes_unchanged(self):
        spec = valid_spec()
        assert validate_admission(spec, ServiceLimits()) is spec

    def reason_of(self, spec, limits) -> str:
        with pytest.raises(AdmissionError) as caught:
            validate_admission(spec, limits)
        return caught.value.reason

    def test_too_many_clips(self):
        spec = validate_submission({
            "clips": {f"c{i}": SQUARE for i in range(3)},
            "method": "partition",
        })
        assert self.reason_of(
            spec, ServiceLimits(max_clips=2)
        ) == "too_many_clips"

    def test_clip_too_complex_and_total_vertices(self):
        many = [[float(i), float(i % 7)] for i in range(40)]
        spec = validate_submission(
            {"clips": {"big": many}, "method": "partition"}
        )
        assert self.reason_of(
            spec, ServiceLimits(max_clip_vertices=10)
        ) == "clip_too_complex"
        assert self.reason_of(
            spec, ServiceLimits(max_total_vertices=10)
        ) == "too_many_vertices"

    def test_coordinates_bounded_and_finite(self):
        far = validate_submission({
            "clips": {"far": [[0, 0], [1e12, 0], [1e12, 40], [0, 40]]},
            "method": "partition",
        })
        assert self.reason_of(far, ServiceLimits()) == "coords_out_of_range"
        nan = valid_spec()
        nan["clips"]["sq"][0][0] = float("nan")
        assert self.reason_of(nan, ServiceLimits()) == "coords_out_of_range"

    def test_spec_window_workers_priority_ranges(self):
        assert self.reason_of(
            valid_spec(spec={"rho": 3.0}), ServiceLimits()
        ) == "spec_out_of_range"
        assert self.reason_of(
            valid_spec(window_nm=1e9), ServiceLimits()
        ) == "window_out_of_range"
        assert self.reason_of(
            valid_spec(tile_workers=999), ServiceLimits()
        ) == "too_many_tile_workers"
        assert self.reason_of(
            valid_spec(priority=1000), ServiceLimits()
        ) == "priority_out_of_range"


class TestRateLimiting:
    def test_token_bucket_refills_at_rate(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        t0 = 100.0
        assert bucket.allow(t0) and bucket.allow(t0)
        assert not bucket.allow(t0)  # burst drained
        assert bucket.allow(t0 + 1.1)  # one token back after ~1s
        assert not bucket.allow(t0 + 1.1)

    def test_per_client_isolation_and_lru_bound(self):
        limiter = ClientRateLimiter(rate=0.001, burst=1, max_clients=2)
        t0 = 50.0
        assert limiter.allow("a", t0)
        assert not limiter.allow("a", t0)  # a is drained
        assert limiter.allow("b", t0)  # b unaffected
        limiter.allow("c", t0)  # evicts oldest (a)
        assert len(limiter) == 2
        assert limiter.allow("a", t0)  # fresh bucket after eviction


class TestJobWatchdog:
    def make(self, tmp_path, running, **limit_overrides):
        limits = ServiceLimits(**limit_overrides)
        killed: list = []
        dog = JobWatchdog(
            limits, tmp_path / "heartbeats",
            running=lambda: running,
            over_budget=killed.append,
        )
        return dog, killed

    def test_disabled_without_budgets(self, tmp_path):
        dog, _ = self.make(tmp_path, {})
        assert not dog.enabled

    def test_wall_budget_flags_once(self, tmp_path):
        now = time.time()
        dog, killed = self.make(
            tmp_path, {"job-aaaaaaaa": now - 10}, job_wall_budget_s=5.0
        )
        assert dog.enabled
        violations = dog.tick(now)
        assert [v.job_id for v in violations] == ["job-aaaaaaaa"]
        assert killed[0].reason == "wall"
        assert dog.tick(now) == []  # flagged once, not spammed
        dog.forget("job-aaaaaaaa")
        assert len(dog.tick(now)) == 1  # re-armed after requeue

    def test_rss_budget_reads_heartbeat(self, tmp_path):
        now = time.time()
        hb_dir = tmp_path / "heartbeats"
        hb_dir.mkdir()
        (hb_dir / "hb-job-bbbbbbbb.json").write_text(
            json.dumps({"rss_bytes": 512 * 1024 * 1024})
        )
        dog, killed = self.make(
            tmp_path, {"job-bbbbbbbb": now},
            job_rss_budget_bytes=256 * 1024 * 1024,
        )
        assert [v.reason for v in dog.tick(now)] == ["rss"]
        assert "rss" in str(killed[0])

    def test_within_budget_untouched(self, tmp_path):
        now = time.time()
        dog, killed = self.make(
            tmp_path, {"job-cccccccc": now - 1}, job_wall_budget_s=60.0
        )
        assert dog.tick(now) == [] and killed == []


class TestDiskGuard:
    def test_override_and_ensure(self, tmp_path):
        set_disk_free_override(1000)
        assert disk_free_bytes(tmp_path) == 1000
        ensure_disk_space(tmp_path, 500)  # above floor: fine
        with pytest.raises(DiskFullError) as caught:
            ensure_disk_space(tmp_path, 5000)
        assert caught.value.free == 1000 and caught.value.floor == 5000
        set_disk_free_override(None)
        assert disk_free_bytes(tmp_path) > 0  # real statvfs again

    def test_none_floor_disables(self, tmp_path):
        set_disk_free_override(0)
        ensure_disk_space(tmp_path, None)  # no floor: never raises

    def test_evict_lru_oldest_first(self, tmp_path):
        import os
        store = tmp_path / "cache"
        store.mkdir()
        for i, age in enumerate([300, 200, 100]):
            path = store / f"entry{i}.json"
            path.write_bytes(b"x" * 1000)
            stamp = time.time() - age
            os.utime(path, (stamp, stamp))
        set_disk_free_override(500)
        removed = evict_lru(store, floor_bytes=2000)
        assert removed >= 1
        assert not (store / "entry0.json").exists()  # oldest went first
        assert (store / "entry2.json").exists()  # newest survives

    def test_cache_write_skipped_below_floor(self, tmp_path):
        cache = FractureCache(
            persist_dir=tmp_path / "store", min_free_bytes=10**15
        )
        cache.put("f" * 64, {"shots": [], "shot_count": 0, "feasible": True,
                             "failing_px": 0, "runtime_s": 0.0})
        stats = cache.stats()
        assert stats["disk_write_skips"] >= 1
        assert not list((tmp_path / "store").glob("*.json"))

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = tmp_path / "store"
        cache = FractureCache(persist_dir=store)
        fingerprint = "a" * 64
        cache.put(fingerprint, {"shots": [], "shot_count": 0,
                                "feasible": True, "failing_px": 0,
                                "runtime_s": 0.0})
        cache.clear()  # force the disk path
        entry = next(store.glob("*.json"))
        entry.write_text("{ not json")
        assert cache.get(fingerprint) is None
        assert cache.stats()["corrupt_quarantined"] == 1
        assert entry.with_suffix(".json.bad").exists()
        assert not entry.exists()
