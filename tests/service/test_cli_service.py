"""End-to-end CLI smoke: real daemon subprocess, real signals.

The in-process server tests cover the control plane; these cover what
only a subprocess can — a SIGKILLed daemon leaving a ``running`` job on
disk for the next daemon to resume bit-identically, and a SIGTERM'd
``fracture`` run closing its telemetry stream with a clean
``interrupted`` terminal record.

The long bar tiles 66×1 under ``window_nm=100`` (~1.5 s of tile work),
so "kill after the first tile settles" lands mid-job with a wide
margin.  Each test carries a generous ``pytest.mark.timeout`` for the
CI runner (the marker is inert without pytest-timeout installed).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs.stream import read_stream
from repro.service.client import ServiceClient, wait_for_daemon
from repro.service.executor import execute_job
from repro.service.jobs import JobPaths, JobRecord, validate_submission

LONG_BAR = [[0.0, 0.0], [6600.0, 0.0], [6600.0, 60.0], [0.0, 60.0]]
SHORT_BAR = [[0.0, 0.0], [220.0, 0.0], [220.0, 60.0], [0.0, 60.0]]


def write_clip_file(path: Path, name: str, vertices: list) -> Path:
    path.write_text(json.dumps({
        "format": "repro-clips",
        "clips": {name: {"vertices": vertices}},
    }))
    return path


def spawn(args: list[str], cwd: Path) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def run_cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    process = spawn(args, cwd)
    stdout, stderr = process.communicate(timeout=120)
    assert process.returncode == 0, f"{args} failed:\n{stdout}\n{stderr}"
    return subprocess.CompletedProcess(args, process.returncode, stdout, stderr)


def wait_for_first_tile(checkpoint_dir: Path, timeout_s: float = 60.0) -> None:
    """Block until a checkpoint journal holds at least one settled tile."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for journal in checkpoint_dir.glob("*.tiles.jsonl"):
            for line in journal.read_text().splitlines():
                try:
                    if json.loads(line).get("kind") == "tile":
                        return
                except json.JSONDecodeError:
                    continue
        time.sleep(0.02)
    raise AssertionError(f"no tile journaled under {checkpoint_dir}")


@pytest.mark.timeout(300)
class TestDaemonKillRestart:
    def test_sigkill_mid_job_then_restart_is_bit_identical(self, tmp_path):
        """ISSUE smoke: two priorities, tail a stream, kill+restart mid-job."""
        submission = validate_submission({
            "clips": {"bar": LONG_BAR},
            "method": "partition",
            "window_nm": 100.0,
            "checkpoint": True,
        })
        reference_record = JobRecord(job_id="job-c01dc01d", spec=submission)
        reference_record.attempts = 1
        reference = execute_job(
            reference_record,
            JobPaths.for_job(tmp_path / "cold", reference_record.job_id),
        )

        state_dir = tmp_path / "state"
        clip_file = write_clip_file(tmp_path / "bar.json", "bar", LONG_BAR)
        daemon = spawn(
            ["serve", "--state-dir", str(state_dir), "--workers", "1"],
            tmp_path,
        )
        try:
            assert wait_for_daemon(state_dir, timeout_s=30)
            client = ServiceClient(state_dir)

            # A queued low-priority sibling rides along across the kill.
            submitted = run_cli(
                ["job", "submit", "--state-dir", str(state_dir),
                 "--clip-file", str(clip_file), "--method", "partition",
                 "--window-nm", "100", "--priority", "5"],
                tmp_path,
            )
            job_id = submitted.stdout.splitlines()[0].strip()
            sibling = client.submit(
                {"short": SHORT_BAR}, method="partition", priority=0,
                window_nm=100.0,
            )

            paths = JobPaths.for_job(state_dir, job_id)
            wait_for_first_tile(paths.checkpoint_dir)
            daemon.kill()  # SIGKILL: no graceful requeue, no cleanup
            daemon.wait(timeout=30)

            on_disk = JobRecord.load(paths)
            assert on_disk.state.value == "running"  # crash left it mid-job

            # The partial stream is already tailable by job id.
            tailed = run_cli(
                ["trace", "tail", job_id, "--state-dir", str(state_dir)],
                tmp_path,
            )
            assert "job_start" in tailed.stdout
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

        daemon2 = spawn(
            ["serve", "--state-dir", str(state_dir), "--workers", "1"],
            tmp_path,
        )
        try:
            assert wait_for_daemon(state_dir, timeout_s=30)
            banner = daemon2.stdout.readline()
            assert "recovered 1 queued / 1 resumed" in banner

            client = ServiceClient(state_dir)
            finished = client.wait(job_id, timeout_s=120)
            assert finished["state"] == "done"
            result = client.result(job_id)
            assert result["resumed"] is True
            assert result["attempts"] == 2
            assert result["clips"]["bar"]["shots"] == \
                reference["clips"]["bar"]["shots"]

            assert client.wait(sibling, timeout_s=120)["state"] == "done"
            run_cli(
                ["job", "shutdown", "--state-dir", str(state_dir)], tmp_path
            )
            daemon2.wait(timeout=60)
        finally:
            if daemon2.poll() is None:
                daemon2.kill()
                daemon2.wait(timeout=30)


@pytest.mark.timeout(300)
class TestGracefulFractureSignals:
    def test_sigterm_flushes_checkpoint_and_closes_stream(self, tmp_path):
        clip_file = write_clip_file(tmp_path / "bar.json", "bar", LONG_BAR)
        stream = tmp_path / "stream.jsonl"
        checkpoint_dir = tmp_path / "ckpt"
        process = spawn(
            ["fracture", "--method", "partition",
             "--clip-file", str(clip_file), "--window-nm", "100",
             "--checkpoint", str(checkpoint_dir),
             "--stream", str(stream),
             "--output", str(tmp_path / "out")],
            tmp_path,
        )
        try:
            wait_for_first_tile(checkpoint_dir)
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)

        assert process.returncode == 130
        assert "interrupted" in stderr

        # The stream closed with a clean terminal record.
        records = read_stream(stream)
        ends = [r for r in records if r["type"] == "stream_end"]
        assert len(ends) == 1
        assert ends[0]["status"] == "interrupted"

        # The journal survived with the settled tiles; a --resume run
        # replays them and completes.
        resumed = run_cli(
            ["fracture", "--method", "partition",
             "--clip-file", str(clip_file), "--window-nm", "100",
             "--checkpoint", str(checkpoint_dir), "--resume",
             "--output", str(tmp_path / "out")],
            tmp_path,
        )
        assert resumed.returncode == 0
