"""Checkpoint/resume through the service: interrupted jobs finish
bit-identically.

Two layers:

* executor level — a stop that trips after the first tile settles must
  leave a journal the resumed attempt replays, and the resumed shot
  list must equal an uninterrupted cold run exactly;
* daemon level — a job found ``running`` on disk (previous daemon
  died under it) is requeued with resume and completes identically.

The ``bar`` clip tiles 3×1 under ``window_nm=100``, so there are real
tile boundaries to journal and a real seam stitch in the result.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.stream import read_stream
from repro.service.executor import (
    JobControl,
    JobInterrupted,
    execute_job,
)
from repro.service.jobs import (
    JobPaths,
    JobRecord,
    JobState,
    validate_submission,
)
from repro.service.protocol import decode_line, encode_line
from repro.service.server import FractureService

BAR = {"bar": [[0, 0], [220, 0], [220, 60], [0, 60]]}


def bar_submission(**overrides) -> dict:
    return validate_submission({
        "clips": BAR,
        "method": "partition",
        "window_nm": 100.0,
        "checkpoint": True,
        **overrides,
    })


class TripControl(JobControl):
    """Flips the daemon stop flag after ``trip_after`` tile checks.

    The tiled runtime polls ``should_stop`` before each tile, so
    ``trip_after=1`` lets exactly one tile settle (and journal) before
    the graceful interrupt fires — a deterministic mid-job SIGTERM.
    """

    def __init__(self, trip_after: int):
        super().__init__()
        self._checks = 0
        self._trip_after = trip_after

    def should_stop(self) -> bool:
        self._checks += 1
        if self._checks > self._trip_after:
            self.stop.set()
        return super().should_stop()


def cold_run(tmp_path) -> dict:
    record = JobRecord(job_id="job-c01dc01d", spec=bar_submission())
    record.attempts = 1
    return execute_job(
        record, JobPaths.for_job(tmp_path / "cold", record.job_id)
    )


class TestExecutorResume:
    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        reference = cold_run(tmp_path)

        record = JobRecord(job_id="job-ab12ab12", spec=bar_submission())
        record.attempts = 1
        paths = JobPaths.for_job(tmp_path / "svc", record.job_id)
        with pytest.raises(JobInterrupted):
            execute_job(record, paths, None, TripControl(trip_after=1))

        # The journal holds the settled tile(s), fsynced before the stop.
        journals = list(paths.checkpoint_dir.glob("*.tiles.jsonl"))
        assert len(journals) == 1
        journaled = [
            json.loads(line)
            for line in journals[0].read_text().splitlines() if line
        ]
        tiles_before = [e for e in journaled if e.get("kind") == "tile"]
        assert len(tiles_before) >= 1

        # Resumed attempt: same job dir, resume flag set.
        record.resume = True
        record.attempts = 2
        payload = execute_job(record, paths, None, JobControl())

        assert payload["clips"]["bar"]["shots"] == \
            reference["clips"]["bar"]["shots"]
        assert payload["totals"]["shots"] == reference["totals"]["shots"]
        assert payload["resumed"] is True

    def test_stream_spans_both_attempts(self, tmp_path):
        record = JobRecord(job_id="job-ab34ab34", spec=bar_submission())
        record.attempts = 1
        paths = JobPaths.for_job(tmp_path / "svc", record.job_id)
        with pytest.raises(JobInterrupted):
            execute_job(record, paths, None, TripControl(trip_after=1))
        record.resume = True
        record.attempts = 2
        execute_job(record, paths, None, JobControl())

        records = read_stream(paths.stream)
        headers = [r for r in records if r["type"] == "stream_header"]
        ends = [r for r in records if r["type"] == "stream_end"]
        assert len(headers) == 2                # one per attempt
        assert headers[0]["resumed"] is False
        assert headers[1]["resumed"] is True
        # Exactly one terminal record, from the attempt that finished —
        # a follower attached across the restart sees one clean end.
        assert len(ends) == 1
        assert ends[0]["status"] == "ok"
        interrupts = [
            r for r in records
            if r.get("name") == "job_interrupted"
        ]
        assert len(interrupts) == 1


class TestDaemonRecovery:
    def test_running_job_on_disk_resumes_to_identical_result(self, tmp_path):
        reference = cold_run(tmp_path)

        # Craft the crash aftermath: job.json persisted as RUNNING (the
        # daemon died before any transition out of it).
        state_dir = tmp_path / "state"
        record = JobRecord(job_id="job-dead0001", spec=bar_submission())
        record.state = JobState.RUNNING
        record.attempts = 1
        record.seq = 4
        paths = JobPaths.for_job(state_dir, record.job_id)
        record.save(paths)

        async def main() -> dict:
            service = FractureService(state_dir, workers=1)
            await service.start()
            try:
                assert service.recovered["resumed"] == 1
                reader, writer = await asyncio.open_unix_connection(
                    str(service.socket_path)
                )
                try:
                    writer.write(encode_line({
                        "op": "wait", "job_id": record.job_id,
                        "timeout_s": 60,
                    }))
                    await writer.drain()
                    waited = decode_line(await reader.readline())
                    assert waited["job"]["state"] == "done"
                    writer.write(encode_line({
                        "op": "result", "job_id": record.job_id,
                    }))
                    await writer.drain()
                    return decode_line(await reader.readline())["result"]
                finally:
                    writer.close()
            finally:
                await service.stop("drain")

        result = asyncio.run(main())
        assert result["clips"]["bar"]["shots"] == \
            reference["clips"]["bar"]["shots"]
        assert result["attempts"] == 2          # recovery bumped it
        assert result["resumed"] is True

        # The persisted record settled too.
        final = JobRecord.load(paths)
        assert final.state is JobState.DONE
