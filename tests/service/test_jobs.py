"""Job model: validation, persistence round-trips, stream resolution."""

from __future__ import annotations

import pytest

from repro.service.jobs import (
    JobPaths,
    JobRecord,
    JobState,
    job_id_like,
    new_job_id,
    resolve_stream_path,
    validate_submission,
)

GOOD = {
    "clips": {"sq": [[0, 0], [40, 0], [40, 40], [0, 40]]},
    "method": "partition",
    "priority": 3,
}


class TestValidation:
    def test_defaults_filled(self):
        spec = validate_submission({"clips": GOOD["clips"]})
        assert spec["method"] == "ours"
        assert spec["priority"] == 0
        assert spec["window_nm"] is None
        assert spec["use_result_cache"] is True
        assert spec["checkpoint"] is True

    def test_vertices_coerced_to_floats(self):
        spec = validate_submission(GOOD)
        assert spec["clips"]["sq"][1] == [40.0, 0.0]

    @pytest.mark.parametrize("bad", [
        None,
        {},
        {"clips": {}},
        {"clips": {"sq": [[0, 0], [1, 1]]}},            # < 3 vertices
        {"clips": {"sq": [[0, 0], [1], [2, 2]]}},       # malformed vertex
        {"clips": {"": [[0, 0], [1, 0], [1, 1]]}},      # empty name
        {"clips": GOOD["clips"], "priority": "high"},
        {"clips": GOOD["clips"], "window_nm": -5},
        {"clips": GOOD["clips"], "tile_workers": 0},
        {"clips": GOOD["clips"], "spec": {"bogus": 1.0}},
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_submission(bad)

    def test_unknown_top_level_fields_dropped(self):
        spec = validate_submission({**GOOD, "evil": "payload"})
        assert "evil" not in spec


class TestRecordPersistence:
    def test_round_trip(self, tmp_path):
        record = JobRecord(
            job_id=new_job_id(),
            spec=validate_submission(GOOD),
            priority=3,
            seq=12,
        )
        paths = JobPaths.for_job(tmp_path, record.job_id)
        record.save(paths)
        loaded = JobRecord.load(paths)
        assert loaded.job_id == record.job_id
        assert loaded.state is JobState.QUEUED
        assert loaded.priority == 3
        assert loaded.seq == 12
        assert loaded.spec == record.spec

    def test_state_machine_fields_persist(self, tmp_path):
        record = JobRecord(job_id="job-00000001", spec=validate_submission(GOOD))
        record.state = JobState.RUNNING
        record.resume = True
        record.attempts = 2
        paths = JobPaths.for_job(tmp_path, record.job_id)
        record.save(paths)
        loaded = JobRecord.load(paths)
        assert loaded.state is JobState.RUNNING
        assert loaded.resume
        assert loaded.attempts == 2

    def test_settled_property(self):
        assert JobState.DONE.settled
        assert JobState.FAILED.settled
        assert JobState.CANCELLED.settled
        assert not JobState.QUEUED.settled
        assert not JobState.RUNNING.settled

    def test_public_view_strips_clip_geometry(self):
        record = JobRecord(job_id="job-00000002", spec=validate_submission(GOOD))
        view = record.public_view()
        assert "clips" not in view["spec"]
        assert view["spec"]["clip_names"] == ["sq"]
        assert view["state"] == "queued"


class TestStreamResolution:
    def test_job_id_shape(self):
        assert job_id_like(new_job_id())
        assert job_id_like("job-ab12cd34")
        assert not job_id_like("job-xyz")
        assert not job_id_like("stream.jsonl")

    def test_job_id_resolves_into_state_dir(self, tmp_path):
        path = resolve_stream_path("job-ab12cd34", tmp_path)
        assert path == tmp_path / "jobs" / "job-ab12cd34" / "stream.jsonl"

    def test_literal_path_passes_through(self, tmp_path):
        assert resolve_stream_path("run.jsonl", tmp_path).name == "run.jsonl"

    def test_existing_file_wins_over_job_id_shape(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        decoy = tmp_path / "job-ab12cd34"
        decoy.write_text("")
        assert resolve_stream_path("job-ab12cd34", tmp_path).resolve() == decoy
