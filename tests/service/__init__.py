"""Tests of the fracture-as-a-service daemon (repro.service)."""
