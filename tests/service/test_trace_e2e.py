"""End-to-end trace correlation across a SIGKILLed daemon.

The acceptance invariant for the observability layer: ONE trace_id,
minted client-side at submit, is present on

* the durable job record (and survives a daemon restart),
* every stream record of every attempt — spans, tiles, events —
  across both daemon processes,
* the checkpoint journal's header and tile lines,
* worker heartbeat files,
* the exported chrome trace (structurally valid, single trace_id),

and enabling all of it never changes the shot output: the resumed
traced job must match a cold untraced run bit-identically.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs import (
    chrome_from_records,
    mint_trace,
    parse_prometheus,
    read_stream,
    validate_chrome_trace,
)
from repro.service.client import ServiceClient, wait_for_daemon
from repro.service.executor import execute_job
from repro.service.jobs import JobPaths, JobRecord, validate_submission

LONG_BAR = [[0.0, 0.0], [6600.0, 0.0], [6600.0, 60.0], [0.0, 60.0]]


def spawn_daemon(state_dir: Path, cwd: Path) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir), "--workers", "1"],
        cwd=cwd, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def wait_for_first_tile(checkpoint_dir: Path, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for journal in checkpoint_dir.glob("*.tiles.jsonl"):
            for line in journal.read_text().splitlines():
                try:
                    if json.loads(line).get("kind") == "tile":
                        return
                except json.JSONDecodeError:
                    continue
        time.sleep(0.02)
    raise AssertionError(f"no tile journaled under {checkpoint_dir}")


def cold_reference(tmp_path: Path) -> dict:
    """The same job outside any daemon, with tracing entirely off."""
    submission = validate_submission({
        "clips": {"bar": LONG_BAR}, "method": "partition",
        "window_nm": 100.0, "checkpoint": True,
    })
    record = JobRecord(job_id="job-c0ffee00", spec=submission)
    record.attempts = 1
    return execute_job(
        record, JobPaths.for_job(tmp_path / "cold", record.job_id)
    )


@pytest.mark.timeout(300)
class TestTraceSurvivesSigkill:
    def test_one_trace_id_joins_both_daemon_processes(self, tmp_path):
        reference = cold_reference(tmp_path)
        state_dir = tmp_path / "state"
        trace = mint_trace()

        daemon = spawn_daemon(state_dir, tmp_path)
        try:
            wait_for_daemon(state_dir, timeout_s=30)
            client = ServiceClient(state_dir)
            job_id = client.submit(
                {"bar": LONG_BAR}, method="partition", window_nm=100.0,
                trace=trace,
            )
            assert client.last_trace_id == trace.trace_id
            paths = JobPaths.for_job(state_dir, job_id)
            wait_for_first_tile(paths.checkpoint_dir)
            daemon.kill()  # SIGKILL: no atexit, no graceful anything
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

        daemon2 = spawn_daemon(state_dir, tmp_path)
        try:
            wait_for_daemon(state_dir, timeout_s=30)
            client = ServiceClient(state_dir)
            finished = client.wait(job_id, timeout_s=120)
            assert finished["state"] == "done"

            # -- job record: minted id survived the restart ---------------
            assert finished["trace"]["trace_id"] == trace.trace_id
            assert finished["attempts"] >= 2

            # -- metrics op: valid exposition from the second daemon ------
            parsed = parse_prometheus(client.metrics())
            assert any(
                name.startswith("repro_service_") for name, _ in parsed
            )

            result = client.result(job_id)
            client.shutdown("drain")
            daemon2.wait(timeout=60)
        finally:
            if daemon2.poll() is None:
                daemon2.kill()
                daemon2.wait(timeout=30)

        # -- determinism: traced + killed + resumed == cold untraced ------
        assert result["resumed"] is True
        assert result["clips"]["bar"]["shots"] == \
            reference["clips"]["bar"]["shots"]
        assert result["totals"]["shots"] == reference["totals"]["shots"]

        # -- stream: both attempts, one trace_id --------------------------
        records = read_stream(paths.stream)
        headers = [r for r in records if r["type"] == "stream_header"]
        assert len(headers) >= 2, "expected an attempt per daemon process"
        assert {h.get("pid") for h in headers} and len(
            {h.get("pid") for h in headers}
        ) >= 2, "attempts must come from two daemon processes"
        stamped = [r for r in records if "trace_id" in r]
        assert stamped, "no stream record carries a trace_id"
        assert {r["trace_id"] for r in stamped} == {trace.trace_id}
        # Spans — the tile work itself — are among the stamped records.
        assert any(r["type"] == "span_open" for r in stamped)
        assert any(r["type"] == "span_close" for r in stamped)

        # -- checkpoint journal: tile lines carry the id ------------------
        journal = next(iter(paths.checkpoint_dir.glob("*.tiles.jsonl")))
        entries = []
        for line in journal.read_text().splitlines():
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail from the kill
        assert entries
        journal_ids = {
            e["trace_id"] for e in entries if "trace_id" in e
        }
        assert journal_ids == {trace.trace_id}
        tiles = [e for e in entries if e.get("kind") == "tile"]
        assert tiles and all(
            e.get("trace_id") == trace.trace_id for e in tiles
        )

        # -- heartbeats: whatever survived is stamped ---------------------
        heartbeats_dir = state_dir / "heartbeats"
        for beat_file in heartbeats_dir.glob("*.json"):
            beat = json.loads(beat_file.read_text())
            meta = beat.get("meta") or {}
            if meta.get("job_id") == job_id:
                assert meta.get("trace_id") == trace.trace_id

        # -- chrome export: valid, joined to the same id ------------------
        doc = chrome_from_records(records)
        summary = validate_chrome_trace(
            doc, expect_trace_id=trace.trace_id
        )
        assert summary["spans"] > 0

    def test_server_mints_when_client_sends_garbage(self, tmp_path):
        """A hostile/legacy trace field degrades to a fresh server-side
        trace — the job still runs and is still correlated."""
        state_dir = tmp_path / "state"
        daemon = spawn_daemon(state_dir, tmp_path)
        try:
            wait_for_daemon(state_dir, timeout_s=30)
            client = ServiceClient(state_dir)
            job_id = client.submit(
                {"bar": [[0, 0], [220, 0], [220, 60], [0, 60]]},
                method="partition",
                trace={"trace_id": "NOT-HEX", "evil": "x" * 4096},
            )
            finished = client.wait(job_id, timeout_s=120)
            assert finished["state"] == "done"
            minted = (finished.get("trace") or {}).get("trace_id")
            assert minted and minted != "NOT-HEX"
            assert client.last_trace_id == minted
            client.shutdown("drain")
            daemon.wait(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
