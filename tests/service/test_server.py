"""Daemon control plane: lifecycle, ordering, backpressure, cancel, wait.

Every test runs an in-process :class:`FractureService` on a private
state directory with a *stub* job runner, so the control plane is
exercised in milliseconds without fracturing anything.  Requests go
through the real Unix socket and wire protocol.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.service.executor import JobCancelled, JobInterrupted
from repro.service.jobs import JobState
from repro.service.protocol import decode_line, encode_line
from repro.service.server import FractureService, daemon_info

CLIPS = {"sq": [[0, 0], [40, 0], [40, 40], [0, 40]]}


def submit_payload(priority: int = 0, **overrides) -> dict:
    job = {"clips": CLIPS, "method": "partition", "priority": priority,
           "checkpoint": False, **overrides}
    return {"op": "submit", "job": job}


async def request(service: FractureService, payload: dict) -> dict:
    reader, writer = await asyncio.open_unix_connection(
        str(service.socket_path)
    )
    try:
        writer.write(encode_line(payload))
        await writer.drain()
        return decode_line(await reader.readline())
    finally:
        writer.close()


def run(coro):
    return asyncio.run(coro)


def instant_runner(record, paths, caches, control):
    return {"totals": {"clips": 1, "shots": 0, "feasible": True,
                       "cached_clips": 0}}


class GateRunner:
    """Stub runner that records execution order and can block on a gate."""

    def __init__(self):
        self.order: list[str] = []
        self.gate = threading.Event()
        self.started = threading.Event()

    def __call__(self, record, paths, caches, control):
        self.started.set()
        self.order.append(record.spec.get("name") or record.job_id)
        while not self.gate.wait(0.01):
            control.raise_if_stopped()
        control.raise_if_stopped()
        return {"totals": {"clips": 0, "shots": 0, "feasible": True,
                           "cached_clips": 0}}


class TestLifecycle:
    def test_submit_runs_to_done(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1, job_runner=instant_runner
            )
            await service.start()
            try:
                response = await request(service, submit_payload())
                assert response["ok"]
                job_id = response["job_id"]
                waited = await request(
                    service, {"op": "wait", "job_id": job_id, "timeout_s": 10}
                )
                assert waited["job"]["state"] == "done"
                assert waited["job"]["summary"]["feasible"] is True
                status = await request(
                    service, {"op": "status", "job_id": job_id}
                )
                assert status["job"]["attempts"] == 1
            finally:
                await service.stop("drain")

        run(main())

    def test_ping_lists_stats_and_unknown_ops(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1, job_runner=instant_runner
            )
            await service.start()
            try:
                assert daemon_info(tmp_path) is not None
                ping = await request(service, {"op": "ping"})
                assert ping["ok"] and ping["schema"] == "repro.service/v1"
                bogus = await request(service, {"op": "explode"})
                assert not bogus["ok"] and bogus["code"] == "unknown_op"
                listing = await request(service, {"op": "list"})
                assert listing["jobs"] == []
                stats = await request(service, {"op": "stats"})
                assert stats["queued"] == 0
                assert "result" in stats["caches"]
            finally:
                await service.stop("drain")
            assert daemon_info(tmp_path) is None  # daemon.json cleaned up

        run(main())

    def test_job_failure_is_contained(self, tmp_path):
        def exploding_runner(record, paths, caches, control):
            raise RuntimeError("boom")

        async def main():
            service = FractureService(
                tmp_path, workers=1, job_runner=exploding_runner
            )
            await service.start()
            try:
                job_id = (await request(service, submit_payload()))["job_id"]
                waited = await request(
                    service, {"op": "wait", "job_id": job_id, "timeout_s": 10}
                )
                assert waited["job"]["state"] == "failed"
                assert "boom" in waited["job"]["error"]
                result = await request(
                    service, {"op": "result", "job_id": job_id}
                )
                assert not result["ok"] and result["code"] == "not_done"
                # The daemon survived: next submission still works.
                assert (await request(service, submit_payload()))["ok"]
            finally:
                await service.stop("drain")

        run(main())


class TestSchedulingOrder:
    def test_priority_then_fifo(self, tmp_path):
        """With the single worker blocked, queued jobs run by (prio, seq)."""
        runner = GateRunner()

        async def main():
            service = FractureService(tmp_path, workers=1, job_runner=runner)
            await service.start()
            try:
                await request(service, submit_payload(0, name="blocker"))
                await asyncio.get_running_loop().run_in_executor(
                    None, runner.started.wait, 5
                )
                ids = {}
                for name, prio in (
                    ("low-a", 0), ("high-a", 5), ("low-b", 0), ("high-b", 5),
                ):
                    response = await request(
                        service, submit_payload(prio, name=name)
                    )
                    ids[name] = response["job_id"]
                runner.gate.set()
                for name in ids:
                    await request(service, {
                        "op": "wait", "job_id": ids[name], "timeout_s": 10,
                    })
            finally:
                await service.stop("drain")

        run(main())
        assert runner.order == [
            "blocker", "high-a", "high-b", "low-a", "low-b"
        ]


class TestBackpressure:
    def test_queue_full_surfaces_to_client(self, tmp_path):
        runner = GateRunner()

        async def main():
            service = FractureService(
                tmp_path, workers=1, max_queue_depth=2, job_runner=runner
            )
            await service.start()
            try:
                await request(service, submit_payload(name="blocker"))
                await asyncio.get_running_loop().run_in_executor(
                    None, runner.started.wait, 5
                )
                assert (await request(service, submit_payload()))["ok"]
                assert (await request(service, submit_payload()))["ok"]
                rejected = await request(service, submit_payload(priority=9))
                assert not rejected["ok"]
                assert rejected["code"] == "queue_full"
                runner.gate.set()
            finally:
                await service.stop("drain")

        run(main())


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        runner = GateRunner()

        async def main():
            service = FractureService(tmp_path, workers=1, job_runner=runner)
            await service.start()
            try:
                await request(service, submit_payload(name="blocker"))
                await asyncio.get_running_loop().run_in_executor(
                    None, runner.started.wait, 5
                )
                queued = (await request(service, submit_payload(name="victim")))["job_id"]
                cancelled = await request(
                    service, {"op": "cancel", "job_id": queued}
                )
                assert cancelled["state"] == "cancelled"
                runner.gate.set()
            finally:
                await service.stop("drain")
            assert runner.order == ["blocker"]  # victim never ran

        run(main())

    def test_cancel_running_job(self, tmp_path):
        runner = GateRunner()  # gate never opens; only cancel stops it

        async def main():
            service = FractureService(tmp_path, workers=1, job_runner=runner)
            await service.start()
            try:
                job_id = (await request(service, submit_payload()))["job_id"]
                await asyncio.get_running_loop().run_in_executor(
                    None, runner.started.wait, 5
                )
                response = await request(
                    service, {"op": "cancel", "job_id": job_id}
                )
                assert response["cancelling"]
                waited = await request(
                    service, {"op": "wait", "job_id": job_id, "timeout_s": 10}
                )
                assert waited["job"]["state"] == "cancelled"
            finally:
                await service.stop("drain")

        run(main())

    def test_cancel_unknown_job(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1, job_runner=instant_runner
            )
            await service.start()
            try:
                response = await request(
                    service, {"op": "cancel", "job_id": "job-deadbeef"}
                )
                assert not response["ok"]
                assert response["code"] == "unknown_job"
            finally:
                await service.stop("drain")

        run(main())


class TestShutdownModes:
    def test_interrupt_requeues_running_job(self, tmp_path):
        runner = GateRunner()  # blocks until the stop event fires

        async def main():
            service = FractureService(tmp_path, workers=1, job_runner=runner)
            await service.start()
            job_id = (await request(service, submit_payload()))["job_id"]
            await asyncio.get_running_loop().run_in_executor(
                None, runner.started.wait, 5
            )
            await service.stop("interrupt")
            return job_id

        job_id = run(main())
        # On disk: queued again with resume set, ready for the next daemon.
        from repro.service.jobs import JobPaths, JobRecord

        record = JobRecord.load(JobPaths.for_job(tmp_path, job_id))
        assert record.state is JobState.QUEUED
        assert record.resume
        assert record.attempts == 1

    def test_second_daemon_on_live_state_dir_refused(self, tmp_path):
        async def main():
            service = FractureService(
                tmp_path, workers=1, job_runner=instant_runner
            )
            await service.start()
            try:
                rival = FractureService(tmp_path, workers=1)
                with pytest.raises(RuntimeError, match="already running"):
                    await rival.start()
            finally:
                await service.stop("drain")

        run(main())


class TestRestartRecovery:
    def test_queued_jobs_recovered_in_order(self, tmp_path):
        """Daemon 1 dies with queued jobs; daemon 2 runs them in order."""
        runner1 = GateRunner()

        async def first_daemon():
            service = FractureService(tmp_path, workers=1, job_runner=runner1)
            await service.start()
            await request(service, submit_payload(name="blocker"))
            await asyncio.get_running_loop().run_in_executor(
                None, runner1.started.wait, 5
            )
            for name, prio in (("low", 0), ("high", 4)):
                await request(service, submit_payload(prio, name=name))
            # Graceful interrupt: the running blocker checkpoints and is
            # requeued with resume before the daemon exits.  (The
            # ungraceful SIGKILL path is covered by the CLI smoke test.)
            await service.stop("interrupt")

        run(first_daemon())

        runner2 = GateRunner()
        runner2.gate.set()

        async def second_daemon():
            service = FractureService(tmp_path, workers=1, job_runner=runner2)
            await service.start()
            try:
                # All three were persisted as queued: the blocker was
                # gracefully requeued (resume=True) by the interrupt.
                assert service.recovered["queued"] == 3
                assert service.recovered["resumed"] == 0
                blocker = next(
                    record for record in service.jobs.values()
                    if record.spec["name"] == "blocker"
                )
                assert blocker.resume and blocker.attempts == 1
                listing = await request(service, {"op": "list"})
                waiting = [
                    job["job_id"] for job in listing["jobs"]
                    if job["state"] in ("queued", "running")
                ]
                for job_id in waiting:
                    await request(service, {
                        "op": "wait", "job_id": job_id, "timeout_s": 10,
                    })
            finally:
                await service.stop("drain")

        run(second_daemon())
        # Priority order survives the restart; the interrupted blocker
        # re-runs where its priority puts it, flagged as resumed.
        assert runner2.order == ["high", "blocker", "low"]


class TestWaitOp:
    def test_wait_times_out_cleanly(self, tmp_path):
        runner = GateRunner()

        async def main():
            service = FractureService(tmp_path, workers=1, job_runner=runner)
            await service.start()
            try:
                job_id = (await request(service, submit_payload()))["job_id"]
                t0 = time.monotonic()
                waited = await request(service, {
                    "op": "wait", "job_id": job_id, "timeout_s": 0.2,
                })
                assert waited["timed_out"]
                assert time.monotonic() - t0 < 5.0
                runner.gate.set()
            finally:
                await service.stop("drain")

        run(main())


class TestStatsHeartbeats:
    def test_stats_reports_wedged_and_dead_jobs(self, tmp_path):
        """The stats op folds the per-job heartbeat files into a summary:
        a fresh beat with an ancient task is a *wedged* job (slow_task),
        a stale file a *dead* one (no_heartbeat) — flagged, not just
        slow."""
        import json as _json

        hb_dir = tmp_path / "heartbeats"
        hb_dir.mkdir()
        now = time.time()
        (hb_dir / "hb-job-wedged00.json").write_text(_json.dumps({
            "pid": 11, "t": now, "tile": "CLIP-3",
            "task_started_t": now - 10_000.0, "job_id": "job-wedged00",
        }))
        (hb_dir / "hb-job-dead0000.json").write_text(_json.dumps({
            "pid": 12, "t": now - 10_000.0, "job_id": "job-dead0000",
        }))
        (hb_dir / "hb-job-alive000.json").write_text(_json.dumps({
            "pid": 13, "t": now, "job_id": "job-alive000",
        }))

        async def main():
            service = FractureService(
                tmp_path, workers=1, job_runner=instant_runner
            )
            await service.start()
            try:
                stats = await request(service, {"op": "stats"})
                summary = stats["heartbeats"]
                assert summary["alive"] == 1 and summary["stalled"] == 2
                by_job = {w["job_id"]: w["status"] for w in summary["workers"]}
                assert by_job == {
                    "job-wedged00": "slow_task",
                    "job-dead0000": "no_heartbeat",
                    "job-alive000": "alive",
                }
            finally:
                await service.stop("drain")

        run(main())

    def test_real_job_beats_and_cleans_up(self, tmp_path):
        """A real (non-stub) job run publishes a heartbeat while
        executing and unlinks it on completion."""
        from repro.service.executor import JobControl, execute_job
        from repro.service.jobs import JobPaths, JobRecord, new_job_id

        record = JobRecord(
            job_id=new_job_id(),
            spec={"clips": CLIPS, "method": "partition", "checkpoint": False},
            attempts=1,
        )
        paths = JobPaths.for_job(tmp_path, record.job_id)
        payload = execute_job(record, paths, None, JobControl())
        assert payload["totals"]["clips"] == 1
        assert not list((tmp_path / "heartbeats").glob("hb-*.json"))
