"""Priority queue semantics: ordering, FIFO, backpressure, lazy removal."""

from __future__ import annotations

import pytest

from repro.service.queue import PriorityJobQueue, QueueFull


def _push(queue: PriorityJobQueue, job_id: str, priority: int) -> None:
    queue.push(job_id, priority, queue.next_seq())


def drain(queue: PriorityJobQueue) -> list[str]:
    out = []
    while True:
        job_id = queue.pop()
        if job_id is None:
            return out
        out.append(job_id)


class TestOrdering:
    def test_higher_priority_pops_first(self):
        queue = PriorityJobQueue()
        _push(queue, "low", 0)
        _push(queue, "high", 5)
        _push(queue, "mid", 2)
        assert drain(queue) == ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        queue = PriorityJobQueue()
        for name in ("a", "b", "c", "d"):
            _push(queue, name, 1)
        assert drain(queue) == ["a", "b", "c", "d"]

    def test_fifo_survives_interleaved_priorities(self):
        queue = PriorityJobQueue()
        _push(queue, "a0", 0)
        _push(queue, "a1", 1)
        _push(queue, "b0", 0)
        _push(queue, "b1", 1)
        _push(queue, "c0", 0)
        assert drain(queue) == ["a1", "b1", "a0", "b0", "c0"]

    def test_negative_priority_runs_last(self):
        queue = PriorityJobQueue()
        _push(queue, "bulk", -1)
        _push(queue, "normal", 0)
        assert drain(queue) == ["normal", "bulk"]

    def test_snapshot_is_pop_order_and_non_destructive(self):
        queue = PriorityJobQueue()
        _push(queue, "low", 0)
        _push(queue, "high", 3)
        assert queue.snapshot() == ["high", "low"]
        assert len(queue) == 2
        assert drain(queue) == ["high", "low"]


class TestBackpressure:
    def test_push_beyond_depth_raises_queue_full(self):
        queue = PriorityJobQueue(max_depth=2)
        _push(queue, "a", 0)
        _push(queue, "b", 0)
        with pytest.raises(QueueFull) as excinfo:
            _push(queue, "c", 9)  # priority does not bypass the bound
        assert excinfo.value.depth == 2

    def test_pop_frees_capacity(self):
        queue = PriorityJobQueue(max_depth=1)
        _push(queue, "a", 0)
        assert queue.pop() == "a"
        _push(queue, "b", 0)  # no raise
        assert drain(queue) == ["b"]

    def test_remove_frees_capacity(self):
        queue = PriorityJobQueue(max_depth=1)
        _push(queue, "a", 0)
        assert queue.remove("a")
        _push(queue, "b", 0)
        assert drain(queue) == ["b"]

    def test_duplicate_push_rejected(self):
        queue = PriorityJobQueue()
        _push(queue, "a", 0)
        with pytest.raises(ValueError):
            _push(queue, "a", 0)


class TestRemoval:
    def test_removed_job_never_pops(self):
        queue = PriorityJobQueue()
        _push(queue, "a", 0)
        _push(queue, "b", 0)
        assert queue.remove("a")
        assert "a" not in queue
        assert drain(queue) == ["b"]

    def test_remove_absent_is_false(self):
        queue = PriorityJobQueue()
        assert not queue.remove("ghost")


class TestRecoverySeq:
    def test_advance_seq_orders_new_submissions_after_recovered(self):
        queue = PriorityJobQueue()
        # Recovery pushes original sequence numbers back.
        queue.push("old-1", 0, 7)
        queue.push("old-2", 0, 9)
        queue.advance_seq(9)
        _push(queue, "new", 0)
        assert drain(queue) == ["old-1", "old-2", "new"]

    def test_advance_seq_never_goes_backwards(self):
        queue = PriorityJobQueue()
        for _ in range(5):
            queue.next_seq()
        queue.advance_seq(1)  # below current counter: no-op
        assert queue.next_seq() > 4
