"""Unit tests for pixel-resolution polygon boolean operations."""

import pytest

from repro.geometry.boolean import (
    polygon_area_of,
    polygon_difference,
    polygon_intersection,
    polygon_union,
    shots_union_polygons,
)
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


@pytest.fixture()
def square_a() -> Polygon:
    return Polygon([(0, 0), (40, 0), (40, 40), (0, 40)])


@pytest.fixture()
def square_b() -> Polygon:
    return Polygon([(20, 0), (60, 0), (60, 40), (20, 40)])


@pytest.fixture()
def far_square() -> Polygon:
    return Polygon([(100, 100), (130, 100), (130, 130), (100, 130)])


class TestUnion:
    def test_overlapping_squares(self, square_a, square_b):
        result = polygon_union(square_a, square_b)
        assert len(result) == 1
        assert polygon_area_of(result) == pytest.approx(60 * 40, rel=0.02)

    def test_disjoint_stays_separate(self, square_a, far_square):
        result = polygon_union(square_a, far_square)
        assert len(result) == 2
        assert polygon_area_of(result) == pytest.approx(40 * 40 + 30 * 30, rel=0.02)

    def test_union_contains_both(self, square_a, square_b):
        result = polygon_union(square_a, square_b)
        merged = result[0]
        for probe in (square_a.centroid(), square_b.centroid()):
            assert merged.contains_point(probe)


class TestIntersection:
    def test_overlap_region(self, square_a, square_b):
        result = polygon_intersection(square_a, square_b)
        assert len(result) == 1
        assert polygon_area_of(result) == pytest.approx(20 * 40, rel=0.05)

    def test_disjoint_empty(self, square_a, far_square):
        assert polygon_intersection(square_a, far_square) == []

    def test_self_intersection_is_identity(self, square_a):
        result = polygon_intersection(square_a, square_a)
        assert polygon_area_of(result) == pytest.approx(square_a.area, rel=0.02)


class TestDifference:
    def test_bite_taken(self, square_a, square_b):
        result = polygon_difference(square_a, square_b)
        assert polygon_area_of(result) == pytest.approx(20 * 40, rel=0.05)

    def test_subtracting_nothing_nearby(self, square_a, far_square):
        result = polygon_difference(square_a, far_square)
        assert polygon_area_of(result) == pytest.approx(square_a.area, rel=0.02)

    def test_full_cover_empty(self, square_a):
        cover = Polygon([(-5, -5), (45, -5), (45, 45), (-5, 45)])
        assert polygon_difference(square_a, cover) == []

    def test_hole_area_subtracts(self, square_a):
        # Regression: B strictly inside A leaves A\B with a hole; the
        # hole loop's area used to be *added*, reporting |A| + |B|.
        inner = Polygon([(10, 10), (30, 10), (30, 30), (10, 30)])
        result = polygon_difference(square_a, inner)
        assert len(result) == 2  # outer boundary + hole boundary
        assert polygon_area_of(result) == pytest.approx(
            square_a.area - inner.area, rel=0.05
        )

    def test_thin_ring_difference(self):
        # The hole is one pixel away from the outer boundary — the
        # nesting probe must not step across the thin filled band.
        outer = Polygon([(0, 0), (12, 0), (12, 12), (0, 12)])
        inner = Polygon([(1, 1), (11, 1), (11, 11), (1, 11)])
        result = polygon_difference(outer, inner)
        assert polygon_area_of(result) == pytest.approx(
            outer.area - inner.area, rel=0.10
        )

    def test_inclusion_exclusion(self, square_a, square_b):
        """|A∪B| = |A| + |B| − |A∩B| at pixel resolution."""
        union = polygon_area_of(polygon_union(square_a, square_b))
        inter = polygon_area_of(polygon_intersection(square_a, square_b))
        assert union == pytest.approx(
            square_a.area + square_b.area - inter, rel=0.02
        )


class TestShotUnion:
    def test_empty(self):
        assert shots_union_polygons([]) == []

    def test_l_from_two_shots(self):
        shots = [Rect(0, 0, 40, 15), Rect(0, 0, 15, 40)]
        result = shots_union_polygons(shots)
        assert len(result) == 1
        assert polygon_area_of(result) == pytest.approx(
            40 * 15 + 15 * 40 - 15 * 15, rel=0.05
        )

    def test_uncovered_region_workflow(self, square_a):
        """The documented diffing use: target minus written area."""
        shots = [Rect(0, 0, 40, 25)]
        written = shots_union_polygons(shots)
        uncovered = polygon_difference(square_a, written)
        assert polygon_area_of(uncovered) == pytest.approx(40 * 15, rel=0.05)
