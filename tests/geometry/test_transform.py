"""Unit tests for the exact dihedral placement transforms."""

import itertools

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.transform import ROTATIONS, Transform


def all_transforms(dx=0.0, dy=0.0):
    for rotation, mirror in itertools.product(ROTATIONS, (False, True)):
        yield Transform(rotation=rotation, mirror_x=mirror, dx=dx, dy=dy)


class TestConstruction:
    def test_identity(self):
        t = Transform.identity()
        assert t.is_identity
        assert t.is_translation
        assert t.apply(3.0, 4.0) == (3.0, 4.0)

    def test_translation(self):
        t = Transform.translation(10.0, -5.0)
        assert not t.is_identity
        assert t.is_translation
        assert t.apply(1.0, 2.0) == (11.0, -3.0)

    def test_invalid_rotation_rejected(self):
        with pytest.raises(ValueError):
            Transform(rotation=45)


class TestApply:
    def test_rot90(self):
        assert Transform(rotation=90).apply(1.0, 0.0) == (0.0, 1.0)

    def test_rot180(self):
        assert Transform(rotation=180).apply(1.0, 2.0) == (-1.0, -2.0)

    def test_rot270(self):
        assert Transform(rotation=270).apply(1.0, 0.0) == (0.0, -1.0)

    def test_mirror_before_rotation(self):
        # GDSII STRANS order: y → -y first, then CCW rotation.
        t = Transform(rotation=90, mirror_x=True)
        assert t.apply(0.0, 1.0) == (1.0, 0.0)

    def test_apply_point(self):
        p = Transform(rotation=90, dx=5.0).apply_point(Point(1.0, 0.0))
        assert (p.x, p.y) == (5.0, 1.0)

    def test_apply_rect_stays_normalized(self):
        rect = Rect(0, 0, 10, 4)
        for t in all_transforms(dx=7.0, dy=-3.0):
            image = t.apply_rect(rect)
            assert image.xbl <= image.xtr and image.ybl <= image.ytr
            # Dimensions swap under odd rotations but are preserved.
            dims = sorted((image.xtr - image.xbl, image.ytr - image.ybl))
            assert dims == [4.0, 10.0]

    def test_apply_polygon_preserves_area(self):
        poly = Polygon([(0, 0), (30, 0), (30, 10), (10, 10), (10, 20), (0, 20)])
        for t in all_transforms(dx=100.0, dy=50.0):
            assert t.apply_polygon(poly).area == poly.area


class TestAlgebra:
    def test_inverse_round_trips_exactly(self):
        points = [(0.0, 0.0), (17.0, -3.0), (2.5, 1e6)]
        for t in all_transforms(dx=13.0, dy=-7.0):
            inv = t.inverse()
            for x, y in points:
                assert inv.apply(*t.apply(x, y)) == (x, y)
                assert t.apply(*inv.apply(x, y)) == (x, y)

    def test_compose_matches_sequential_application(self):
        points = [(1.0, 2.0), (-3.0, 5.0)]
        for outer in all_transforms(dx=10.0, dy=20.0):
            for inner in all_transforms(dx=-4.0, dy=6.0):
                combined = outer.compose(inner)
                for x, y in points:
                    assert combined.apply(x, y) == outer.apply(*inner.apply(x, y))

    def test_compose_with_identity(self):
        for t in all_transforms(dx=1.0, dy=2.0):
            assert t.compose(Transform.identity()) == t
            assert Transform.identity().compose(t) == t

    def test_translated(self):
        t = Transform(rotation=90, dx=1.0, dy=2.0).translated(10.0, 20.0)
        assert (t.dx, t.dy) == (11.0, 22.0)
        assert t.rotation == 90
