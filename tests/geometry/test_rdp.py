"""Unit tests for Ramer–Douglas–Peucker simplification."""

import math

import pytest

from repro.geometry.point import Point, segment_point_distance
from repro.geometry.polygon import Polygon
from repro.geometry.rdp import rdp_closed, rdp_polyline, rdp_simplify


def _zigzag(n: int, amplitude: float) -> list[Point]:
    return [Point(float(i), amplitude * (i % 2)) for i in range(n)]


class TestPolyline:
    def test_negative_epsilon_raises(self):
        with pytest.raises(ValueError):
            rdp_polyline([Point(0, 0), Point(1, 1), Point(2, 2)], -1.0)

    def test_short_input_unchanged(self):
        pts = [Point(0, 0), Point(1, 1)]
        assert rdp_polyline(pts, 1.0) == pts

    def test_collinear_collapses_to_endpoints(self):
        pts = [Point(float(i), 0.0) for i in range(10)]
        assert rdp_polyline(pts, 0.1) == [pts[0], pts[-1]]

    def test_small_zigzag_removed_large_kept(self):
        small = rdp_polyline(_zigzag(11, 0.5), epsilon=1.0)
        assert len(small) == 2
        large = rdp_polyline(_zigzag(11, 3.0), epsilon=1.0)
        assert len(large) > 2

    def test_endpoints_always_kept(self):
        pts = _zigzag(21, 0.3)
        out = rdp_polyline(pts, 5.0)
        assert out[0] == pts[0] and out[-1] == pts[-1]

    def test_tolerance_guarantee(self):
        """Every dropped vertex stays within epsilon of the simplified line."""
        eps = 0.75
        pts = [Point(i, math.sin(i * 0.7) * 2.0) for i in range(40)]
        out = rdp_polyline(pts, eps)
        for p in pts:
            best = min(
                segment_point_distance(a, b, p) for a, b in zip(out, out[1:])
            )
            assert best <= eps + 1e-9


class TestClosed:
    def test_square_with_noise_vertices(self):
        pts = []
        for i in range(20):
            pts.append(Point(i, 0.05 * (i % 2)))
        for i in range(20):
            pts.append(Point(20, i))
        for i in range(20):
            pts.append(Point(20 - i, 20))
        for i in range(20):
            pts.append(Point(0, 20 - i))
        out = rdp_closed(pts, epsilon=0.5)
        assert len(out) <= 8

    def test_start_index_invariance(self):
        pts = [
            Point(0, 0), Point(5, 0.2), Point(10, 0), Point(10, 10),
            Point(5, 10.2), Point(0, 10),
        ]
        rotated = pts[2:] + pts[:2]
        a = {(round(p.x, 6), round(p.y, 6)) for p in rdp_closed(pts, 0.5)}
        b = {(round(p.x, 6), round(p.y, 6)) for p in rdp_closed(rotated, 0.5)}
        assert a == b


class TestPolygonSimplify:
    def test_reduces_traced_staircase(self, blob_shape):
        simplified = rdp_simplify(blob_shape.polygon, 2.0)
        assert len(simplified) < len(blob_shape.polygon) / 3
        # Area is approximately preserved.
        assert abs(simplified.area - blob_shape.polygon.area) < 0.1 * blob_shape.polygon.area

    def test_degenerate_fallback_returns_original(self):
        tri = Polygon([(0, 0), (10, 0.1), (20, 0)])
        assert rdp_simplify(tri, epsilon=5.0) == tri
