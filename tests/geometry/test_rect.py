"""Unit tests for the Rect (shot) primitive."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect, bounding_box, total_union_area


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 0, 5)
        with pytest.raises(ValueError):
            Rect(0, 5, 5, 0)

    def test_zero_size_is_allowed(self):
        # Degenerate-but-not-inverted rects model edge segments.
        assert Rect(1, 1, 1, 5).width == 0.0

    def test_from_corners_any_order(self):
        r = Rect.from_corners(Point(5, 7), Point(1, 2))
        assert r.as_tuple() == (1, 2, 5, 7)

    def test_from_center(self):
        r = Rect.from_center(Point(5, 5), 4, 6)
        assert r.as_tuple() == (3, 2, 7, 8)


class TestMeasures:
    def test_width_height_area(self):
        r = Rect(1, 2, 5, 8)
        assert (r.width, r.height, r.area) == (4, 6, 24)

    def test_center_and_corners(self):
        r = Rect(0, 0, 4, 2)
        assert r.center == Point(2, 1)
        assert r.corners() == (Point(0, 0), Point(4, 0), Point(4, 2), Point(0, 2))


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(0, 5))
        assert not r.contains_point(Point(0, 5), strict=True)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(2, 2, 12, 8))

    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(5, 0, 10, 5))
        assert not Rect(0, 0, 5, 5).intersects(Rect(6, 0, 10, 5))

    def test_meets_min_size(self):
        assert Rect(0, 0, 10, 10).meets_min_size(10)
        assert not Rect(0, 0, 9.9, 10).meets_min_size(10)


class TestCombination:
    def test_intersection(self):
        overlap = Rect(0, 0, 5, 5).intersection(Rect(3, 3, 9, 9))
        assert overlap is not None and overlap.as_tuple() == (3, 3, 5, 5)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(5, 5, 7, 7)) is None

    def test_intersection_area_commutative(self):
        a, b = Rect(0, 0, 5, 5), Rect(3, -1, 9, 2)
        assert a.intersection_area(b) == b.intersection_area(a) == 4.0

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(5, 5, 7, 7)).as_tuple() == (0, 0, 7, 7)

    def test_expanded_and_translated(self):
        assert Rect(1, 1, 2, 2).expanded(1).as_tuple() == (0, 0, 3, 3)
        assert Rect(1, 1, 2, 2).translated(2, -1).as_tuple() == (3, 0, 4, 1)


class TestEdgeMoves:
    def test_each_edge_moves_correct_coordinate(self):
        r = Rect(0, 0, 10, 10)
        assert r.moved_edge("left", 1).as_tuple() == (1, 0, 10, 10)
        assert r.moved_edge("right", 1).as_tuple() == (0, 0, 11, 10)
        assert r.moved_edge("bottom", -1).as_tuple() == (0, -1, 10, 10)
        assert r.moved_edge("top", -1).as_tuple() == (0, 0, 10, 9)

    def test_inverting_move_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).moved_edge("left", 2)

    def test_unknown_edge_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).moved_edge("diagonal", 1)

    def test_edge_coordinate_roundtrip(self):
        r = Rect(1, 2, 3, 4)
        assert [r.edge_coordinate(e) for e, _ in r.iter_edges()] == [1, 3, 2, 4]

    def test_shrunk_respects_lmin(self):
        r = Rect(0, 0, 12, 30)
        s = r.shrunk(2, lmin=10)
        # Width would drop to 8 < lmin, so x edges stay; height shrinks.
        assert s.as_tuple() == (0, 2, 12, 28)

    def test_snapped(self):
        assert Rect(0.4, 0.6, 10.4, 10.6).snapped().as_tuple() == (0, 1, 10, 11)


class TestCollectionHelpers:
    def test_bounding_box(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, -2, 6, 3)]
        assert bounding_box(rects).as_tuple() == (0, -2, 6, 3)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_union_area_disjoint(self):
        assert total_union_area([Rect(0, 0, 2, 2), Rect(5, 5, 7, 7)]) == 8.0

    def test_union_area_overlapping_not_double_counted(self):
        assert total_union_area([Rect(0, 0, 4, 4), Rect(2, 0, 6, 4)]) == 24.0

    def test_union_area_contained(self):
        assert total_union_area([Rect(0, 0, 10, 10), Rect(2, 2, 4, 4)]) == 100.0

    def test_union_area_empty(self):
        assert total_union_area([]) == 0.0
