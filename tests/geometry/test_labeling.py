"""Unit tests for connected-component labeling."""

import numpy as np
import pytest

from repro.geometry.labeling import bounding_boxes, label_components
from repro.geometry.raster import PixelGrid


class TestLabelComponents:
    def test_empty_mask(self):
        labels, count = label_components(np.zeros((5, 5), dtype=bool))
        assert count == 0 and labels.sum() == 0

    def test_single_component(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[1:4, 1:4] = True
        labels, count = label_components(mask)
        assert count == 1
        assert (labels[mask] == 1).all()
        assert (labels[~mask] == 0).all()

    def test_two_components(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0:2, 0:2] = True
        mask[5:8, 5:8] = True
        _, count = label_components(mask)
        assert count == 2

    def test_diagonal_is_not_connected(self):
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        _, count = label_components(mask)
        assert count == 2

    def test_u_shape_merges_to_one(self):
        """U shape forces label equivalence resolution across the pass."""
        mask = np.zeros((5, 7), dtype=bool)
        mask[1:4, 1] = True
        mask[1:4, 5] = True
        mask[1, 1:6] = True
        _, count = label_components(mask)
        assert count == 1

    def test_labels_consecutive(self):
        rng = np.random.default_rng(3)
        mask = rng.random((30, 30)) > 0.6
        labels, count = label_components(mask)
        present = np.unique(labels)
        assert present[0] == 0 or count == labels.max()
        assert set(present) - {0} == set(range(1, count + 1))

    def test_matches_scipy(self):
        from scipy.ndimage import label as scipy_label

        rng = np.random.default_rng(11)
        mask = rng.random((40, 40)) > 0.55
        _, ours = label_components(mask)
        _, theirs = scipy_label(mask)
        assert ours == theirs


class TestBoundingBoxes:
    def test_boxes_cover_pixel_cells(self):
        grid = PixelGrid(0.0, 0.0, 2.0, 10, 10)
        mask = np.zeros((10, 10), dtype=bool)
        mask[2:4, 3:6] = True
        labels, count = label_components(mask)
        boxes = bounding_boxes(labels, count, grid)
        assert len(boxes) == 1
        rect, pixels = boxes[0]
        assert pixels == 6
        assert rect.as_tuple() == (6.0, 4.0, 12.0, 8.0)

    def test_sorted_by_size_descending(self):
        grid = PixelGrid(0.0, 0.0, 1.0, 20, 20)
        mask = np.zeros((20, 20), dtype=bool)
        mask[1:3, 1:3] = True  # 4 px
        mask[10:16, 10:16] = True  # 36 px
        labels, count = label_components(mask)
        boxes = bounding_boxes(labels, count, grid)
        assert [pixels for _, pixels in boxes] == [36, 4]
