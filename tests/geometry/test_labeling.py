"""Unit tests for connected-component labeling."""

import numpy as np
import pytest

from repro.geometry.labeling import bounding_boxes, label_components
from repro.geometry.raster import PixelGrid


class TestLabelComponents:
    def test_empty_mask(self):
        labels, count = label_components(np.zeros((5, 5), dtype=bool))
        assert count == 0 and labels.sum() == 0

    def test_single_component(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[1:4, 1:4] = True
        labels, count = label_components(mask)
        assert count == 1
        assert (labels[mask] == 1).all()
        assert (labels[~mask] == 0).all()

    def test_two_components(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0:2, 0:2] = True
        mask[5:8, 5:8] = True
        _, count = label_components(mask)
        assert count == 2

    def test_diagonal_is_not_connected(self):
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        _, count = label_components(mask)
        assert count == 2

    def test_u_shape_merges_to_one(self):
        """U shape forces label equivalence resolution across the pass."""
        mask = np.zeros((5, 7), dtype=bool)
        mask[1:4, 1] = True
        mask[1:4, 5] = True
        mask[1, 1:6] = True
        _, count = label_components(mask)
        assert count == 1

    def test_labels_consecutive(self):
        rng = np.random.default_rng(3)
        mask = rng.random((30, 30)) > 0.6
        labels, count = label_components(mask)
        present = np.unique(labels)
        assert present[0] == 0 or count == labels.max()
        assert set(present) - {0} == set(range(1, count + 1))

    def test_matches_scipy(self):
        from scipy.ndimage import label as scipy_label

        rng = np.random.default_rng(11)
        mask = rng.random((40, 40)) > 0.55
        _, ours = label_components(mask)
        _, theirs = scipy_label(mask)
        assert ours == theirs


class TestBoundingBoxes:
    def test_boxes_cover_pixel_cells(self):
        grid = PixelGrid(0.0, 0.0, 2.0, 10, 10)
        mask = np.zeros((10, 10), dtype=bool)
        mask[2:4, 3:6] = True
        labels, count = label_components(mask)
        boxes = bounding_boxes(labels, count, grid)
        assert len(boxes) == 1
        rect, pixels = boxes[0]
        assert pixels == 6
        assert rect.as_tuple() == (6.0, 4.0, 12.0, 8.0)

    def test_sorted_by_size_descending(self):
        grid = PixelGrid(0.0, 0.0, 1.0, 20, 20)
        mask = np.zeros((20, 20), dtype=bool)
        mask[1:3, 1:3] = True  # 4 px
        mask[10:16, 10:16] = True  # 36 px
        labels, count = label_components(mask)
        boxes = bounding_boxes(labels, count, grid)
        assert [pixels for _, pixels in boxes] == [36, 4]


# -- vectorized backend vs the pure-Python oracle ---------------------------
#
# The kernel contract is exact: labels AND numbering (components in
# raster-scan order of their first pixel) must match the union-find
# oracle bit for bit, because tile extraction, AddShot and the GSC
# baseline all consume the ordering.

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.labeling import label_components_scalar
from repro.kernels import use_backend


def _assert_labeling_identical(mask: np.ndarray) -> None:
    with use_backend("numpy") as backend:
        labels_v, count_v = backend.label_components(mask)
    labels_s, count_s = label_components_scalar(mask)
    assert count_v == count_s
    assert np.array_equal(labels_v, labels_s)


def _spiral_mask(n: int) -> np.ndarray:
    """One-pixel-wide square spiral: the longest merge chains per pixel."""
    mask = np.zeros((n, n), dtype=bool)
    y, x = n // 2, n // 2
    mask[y, x] = True
    step, d = 1, 0
    moves = ((0, 1), (1, 0), (0, -1), (-1, 0))
    while step < n:
        for _ in range(2):
            dy, dx = moves[d % 4]
            for _ in range(step):
                y += dy
                x += dx
                if 0 <= y < n and 0 <= x < n:
                    mask[y, x] = True
            d += 1
        step += 2  # gap between arms: a genuine winding component
    return mask


class TestBackendBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        ny=st.integers(1, 28),
        nx=st.integers(1, 28),
        density=st.floats(0.05, 0.95),
    )
    def test_random_masks(self, seed, ny, nx, density):
        rng = np.random.default_rng(seed)
        _assert_labeling_identical(rng.random((ny, nx)) < density)

    @pytest.mark.parametrize(
        "name,mask",
        [
            ("empty", np.zeros((9, 9), dtype=bool)),
            ("all_true", np.ones((9, 13), dtype=bool)),
            ("single_pixel", np.eye(1, dtype=bool)),
            ("single_row", np.array([[1, 1, 0, 1, 0, 0, 1]], dtype=bool)),
            ("single_column", np.array([[1], [0], [1], [1], [0]], dtype=bool)),
            (
                "checkerboard",
                (np.indices((16, 17)).sum(axis=0) % 2 == 0),
            ),
            ("spiral", _spiral_mask(25)),
            ("spiral_even", _spiral_mask(32)),
        ],
    )
    def test_adversarial_structures(self, name, mask):
        _assert_labeling_identical(mask)

    def test_numbering_is_raster_order_of_first_pixels(self):
        rng = np.random.default_rng(2015)
        mask = rng.random((40, 40)) < 0.45
        with use_backend("numpy"):
            labels, count = label_components(mask)
        firsts = [
            int(np.flatnonzero(labels.ravel() == lab)[0])
            for lab in range(1, count + 1)
        ]
        assert firsts == sorted(firsts)

    def test_bounding_boxes_identical_across_backends(self):
        rng = np.random.default_rng(99)
        mask = rng.random((35, 30)) < 0.35
        grid = PixelGrid(0.0, 0.0, 1.0, 30, 35)
        labels, count = label_components_scalar(mask)
        results = {}
        for name in ("numpy", "scalar"):
            with use_backend(name):
                results[name] = [
                    (rect.as_tuple(), pixels)
                    for rect, pixels in bounding_boxes(labels, count, grid)
                ]
        assert results["numpy"] == results["scalar"]
