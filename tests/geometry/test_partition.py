"""Unit tests for rectilinear partition (optimal and scanline)."""

import numpy as np
import pytest

from repro.geometry.partition import partition_rectilinear, scanline_partition
from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid, rasterize_polygon
from repro.geometry.rect import Rect, total_union_area


def _assert_exact_partition(polygon: Polygon, rects: list[Rect]) -> None:
    total = sum(r.area for r in rects)
    union = total_union_area(rects)
    assert np.isclose(total, polygon.area), "areas must add up (no overlap)"
    assert np.isclose(union, polygon.area), "union must cover the polygon"


class TestOptimalPartition:
    def test_rectangle_is_single_rect(self):
        poly = Polygon([(0, 0), (10, 0), (10, 5), (0, 5)])
        rects = partition_rectilinear(poly)
        assert len(rects) == 1
        assert rects[0].as_tuple() == (0, 0, 10, 5)

    def test_l_shape_two_rects(self):
        poly = Polygon([(0, 0), (8, 0), (8, 3), (4, 3), (4, 7), (0, 7)])
        rects = partition_rectilinear(poly)
        assert len(rects) == 2
        _assert_exact_partition(poly, rects)

    def test_t_shape_two_rects(self):
        poly = Polygon(
            [(0, 4), (3, 4), (3, 0), (6, 0), (6, 4), (9, 4), (9, 7), (0, 7)]
        )
        rects = partition_rectilinear(poly)
        assert len(rects) <= 3
        _assert_exact_partition(poly, rects)

    def test_plus_shape_three_rects(self):
        poly = Polygon(
            [(3, 0), (6, 0), (6, 3), (9, 3), (9, 6), (6, 6), (6, 9), (3, 9),
             (3, 6), (0, 6), (0, 3), (3, 3)]
        )
        rects = partition_rectilinear(poly)
        assert len(rects) == 3  # the optimal uses the middle band
        _assert_exact_partition(poly, rects)

    def test_chord_sharing_staircase(self):
        """Staircase with aligned reflex vertices exercises chord selection."""
        poly = Polygon(
            [(0, 0), (9, 0), (9, 3), (6, 3), (6, 6), (3, 6), (3, 9), (0, 9)]
        )
        rects = partition_rectilinear(poly)
        assert len(rects) == 3
        _assert_exact_partition(poly, rects)

    def test_non_rectilinear_raises(self):
        with pytest.raises(ValueError):
            partition_rectilinear(Polygon([(0, 0), (4, 1), (0, 3)]))

    def test_collinear_vertices_tolerated(self):
        poly = Polygon([(0, 0), (5, 0), (10, 0), (10, 5), (0, 5)])
        rects = partition_rectilinear(poly)
        assert len(rects) == 1


class TestScanlinePartition:
    def _grid(self) -> PixelGrid:
        return PixelGrid(0.0, 0.0, 1.0, 30, 30)

    def test_rectangle_single_slab(self):
        grid = self._grid()
        mask = np.zeros(grid.shape, dtype=bool)
        mask[5:15, 3:23] = True
        rects = scanline_partition(mask, grid)
        assert len(rects) == 1
        assert rects[0].as_tuple() == (3.0, 5.0, 23.0, 15.0)

    def test_exact_partition_of_l_mask(self):
        grid = self._grid()
        poly = Polygon([(0, 0), (20, 0), (20, 8), (8, 8), (8, 25), (0, 25)])
        mask = rasterize_polygon(poly, grid)
        rects = scanline_partition(mask, grid)
        covered = sum(r.area for r in rects)
        assert covered == float(mask.sum())
        assert total_union_area(rects) == covered  # non-overlapping

    def test_tolerance_merges_jagged_slabs(self):
        grid = self._grid()
        mask = np.zeros(grid.shape, dtype=bool)
        # Jagged left edge: alternating 10/11 start columns.
        for iy in range(5, 15):
            mask[iy, 10 + (iy % 2) : 25] = True
        exact = scanline_partition(mask, grid, merge_tolerance=0.0)
        merged = scanline_partition(mask, grid, merge_tolerance=1.5)
        assert len(merged) < len(exact)

    def test_two_separate_runs_per_row(self):
        grid = self._grid()
        mask = np.zeros(grid.shape, dtype=bool)
        mask[5:10, 2:8] = True
        mask[5:10, 15:25] = True
        rects = scanline_partition(mask, grid)
        assert len(rects) == 2

    def test_empty_mask(self):
        grid = self._grid()
        assert scanline_partition(np.zeros(grid.shape, dtype=bool), grid) == []


class TestPartitionOnTracedShapes:
    def test_partition_count_staircase_vs_optimal(self, blob_shape):
        """Scanline on a curvy mask produces many slabs (the motivation
        for model-based fracturing)."""
        rects = scanline_partition(blob_shape.inside, blob_shape.grid)
        assert len(rects) > 15
        assert sum(r.area for r in rects) == float(blob_shape.inside.sum())
