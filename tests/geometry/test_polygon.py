"""Unit tests for the Polygon primitive."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


@pytest.fixture()
def unit_square() -> Polygon:
    return Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])


@pytest.fixture()
def l_polygon() -> Polygon:
    return Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_closing_vertex_dropped(self):
        p = Polygon([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(p) == 3

    def test_orientation_normalized_to_ccw(self):
        cw = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        ccw = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert cw.area == ccw.area == 1.0
        # Both store CCW loops: the shoelace sum over stored vertices is
        # positive.
        for poly in (cw, ccw):
            shoelace = sum(a.cross(b) for a, b in poly.edges())
            assert shoelace > 0

    def test_accepts_points_and_tuples(self):
        assert len(Polygon([Point(0, 0), (1, 0), Point(0, 1)])) == 3


class TestMeasures:
    def test_area(self, unit_square, l_polygon):
        assert unit_square.area == 1.0
        assert l_polygon.area == 12.0

    def test_perimeter(self, unit_square):
        assert unit_square.perimeter == 4.0

    def test_bounding_box(self, l_polygon):
        assert l_polygon.bounding_box().as_tuple() == (0, 0, 4, 4)

    def test_centroid_of_square(self, unit_square):
        c = unit_square.centroid()
        assert math.isclose(c.x, 0.5) and math.isclose(c.y, 0.5)


class TestPredicates:
    def test_contains_interior_and_exterior(self, l_polygon):
        assert l_polygon.contains_point(Point(1, 1))
        assert l_polygon.contains_point(Point(3, 1))
        assert not l_polygon.contains_point(Point(3, 3))

    def test_boundary_counts_as_inside(self, unit_square):
        assert unit_square.contains_point(Point(0.5, 0))
        assert unit_square.contains_point(Point(0, 0))

    def test_is_rectilinear(self, l_polygon):
        assert l_polygon.is_rectilinear()
        assert not Polygon([(0, 0), (2, 1), (0, 2)]).is_rectilinear()

    def test_is_convex(self, unit_square, l_polygon):
        assert unit_square.is_convex()
        assert not l_polygon.is_convex()


class TestTransforms:
    def test_translated(self, unit_square):
        moved = unit_square.translated(2, 3)
        assert moved.bounding_box().as_tuple() == (2, 3, 3, 4)

    def test_scaled(self, unit_square):
        assert unit_square.scaled(3).area == 9.0

    def test_collinear_vertices_removed(self):
        p = Polygon([(0, 0), (1, 0), (2, 0), (2, 2), (0, 2)])
        cleaned = p.without_collinear_vertices()
        assert len(cleaned) == 4
        assert cleaned.area == p.area


class TestConstructors:
    def test_from_rect(self):
        p = Polygon.from_rect(Rect(0, 0, 3, 2))
        assert p.area == 6.0 and p.is_rectilinear()

    def test_regular_polygon_area_converges_to_circle(self):
        p = Polygon.regular(Point(0, 0), 1.0, 64)
        assert math.isclose(p.area, math.pi, rel_tol=0.01)

    def test_regular_needs_three_sides(self):
        with pytest.raises(ValueError):
            Polygon.regular(Point(0, 0), 1.0, 2)
