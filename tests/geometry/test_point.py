"""Unit tests for the Point primitive."""

import math

import pytest

from repro.geometry.point import Point, collinear, segment_point_distance


class TestPointAlgebra:
    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Point(1, -2) * 3 == Point(3, -6)
        assert 3 * Point(1, -2) == Point(3, -6)

    def test_negation(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_dot_and_cross(self):
        assert Point(1, 0).dot(Point(0, 1)) == 0.0
        assert Point(1, 0).cross(Point(0, 1)) == 1.0
        assert Point(0, 1).cross(Point(1, 0)) == -1.0

    def test_norm_and_distance(self):
        assert Point(3, 4).norm() == 5.0
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0
        assert Point(1, 1).manhattan_to(Point(4, 5)) == 7.0

    def test_normalized_unit_length(self):
        n = Point(3, 4).normalized()
        assert math.isclose(n.norm(), 1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).normalized()

    def test_perpendicular_is_ccw(self):
        # CCW rotation of +x is +y.
        assert Point(1, 0).perpendicular() == Point(0, 1)
        assert Point(0, 1).perpendicular() == Point(-1, 0)

    def test_rounded(self):
        assert Point(1.4, -1.6).rounded() == Point(1, -2)

    def test_hashable_and_frozen(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2
        with pytest.raises(AttributeError):
            Point(1, 2).x = 5  # type: ignore[misc]


class TestSegmentPointDistance:
    def test_perpendicular_projection(self):
        assert segment_point_distance(Point(0, 0), Point(10, 0), Point(5, 3)) == 3.0

    def test_clamps_to_endpoints(self):
        assert segment_point_distance(Point(0, 0), Point(10, 0), Point(13, 4)) == 5.0
        assert segment_point_distance(Point(0, 0), Point(10, 0), Point(-3, 4)) == 5.0

    def test_degenerate_segment(self):
        assert segment_point_distance(Point(1, 1), Point(1, 1), Point(4, 5)) == 5.0


class TestCollinear:
    def test_collinear_points(self):
        assert collinear(Point(0, 0), Point(1, 1), Point(5, 5))

    def test_non_collinear(self):
        assert not collinear(Point(0, 0), Point(1, 1), Point(5, 5.1))

    def test_tolerance(self):
        assert collinear(Point(0, 0), Point(1, 1), Point(2, 2 + 1e-12))
