"""Unit tests for the pixel grid and polygon rasterization."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid, rasterize_polygon, rasterize_rect
from repro.geometry.rect import Rect


class TestPixelGrid:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PixelGrid(0, 0, 0.0, 10, 10)
        with pytest.raises(ValueError):
            PixelGrid(0, 0, 1.0, 0, 10)

    def test_for_rect_covers_with_margin(self):
        grid = PixelGrid.for_rect(Rect(0, 0, 10, 6), pitch=1.0, margin=2.0)
        extent = grid.extent
        assert extent.xbl == -2.0 and extent.ybl == -2.0
        assert extent.xtr >= 12.0 and extent.ytr >= 8.0

    def test_centers_spacing(self, small_grid):
        xs = small_grid.x_centers()
        assert xs[0] == 0.5 and np.allclose(np.diff(xs), 1.0)

    def test_pixel_center_and_index_roundtrip(self, small_grid):
        center = small_grid.pixel_center(7, 13)
        assert small_grid.index_of(center) == (7, 13)

    def test_index_of_clamps(self, small_grid):
        assert small_grid.index_of(Point(-100, -100)) == (0, 0)
        assert small_grid.index_of(Point(1000, 1000)) == (39, 49)

    def test_rect_to_slices_covers_rect_pixels(self, small_grid):
        ys, xs = small_grid.rect_to_slices(Rect(10, 10, 20, 15))
        # Pixel centres 10.5..19.5 in x, 10.5..14.5 in y.
        assert xs.start <= 10 and xs.stop >= 20
        assert ys.start <= 10 and ys.stop >= 15

    def test_rect_to_slices_never_exceeds_grid(self, small_grid):
        ys, xs = small_grid.rect_to_slices(Rect(-50, -50, 500, 500), margin=25.0)
        assert 0 <= ys.start <= ys.stop <= small_grid.ny
        assert 0 <= xs.start <= xs.stop <= small_grid.nx


class TestRasterizePolygon:
    def test_rectangle_pixel_count(self, small_grid):
        mask = rasterize_polygon(Polygon([(5, 5), (15, 5), (15, 12), (5, 12)]), small_grid)
        assert mask.sum() == 10 * 7

    def test_triangle_area_approximation(self):
        grid = PixelGrid(0, 0, 0.5, 100, 100)
        tri = Polygon([(5, 5), (45, 5), (5, 45)])
        mask = rasterize_polygon(tri, grid)
        area = mask.sum() * grid.pitch**2
        assert abs(area - 800.0) < 25.0

    def test_l_shape_concavity_excluded(self, small_grid):
        l_poly = Polygon([(0, 0), (40, 0), (40, 10), (10, 10), (10, 30), (0, 30)])
        mask = rasterize_polygon(l_poly, small_grid)
        assert not mask[20, 25]  # inside the notch
        assert mask[5, 25]  # inside the bottom bar

    def test_mask_matches_contains_point(self, small_grid):
        from repro.geometry.point import segment_point_distance

        poly = Polygon([(3, 2), (30, 8), (25, 30), (8, 25)])
        mask = rasterize_polygon(poly, small_grid)
        for iy in range(0, small_grid.ny, 3):
            for ix in range(0, small_grid.nx, 3):
                center = small_grid.pixel_center(iy, ix)
                boundary_distance = min(
                    segment_point_distance(a, b, center) for a, b in poly.edges()
                )
                if boundary_distance < 1.0:
                    continue  # near-boundary pixels may go either way
                assert mask[iy, ix] == poly.contains_point(center)

    def test_degenerate_no_vertical_extent(self, small_grid):
        # A polygon fully between two scanline rows rasterizes to nothing.
        sliver = Polygon([(0, 10.6), (40, 10.6), (40, 10.9), (0, 10.9)])
        assert rasterize_polygon(sliver, small_grid).sum() == 0


class TestRasterizeRect:
    def test_matches_polygon_rasterization(self, small_grid):
        rect = Rect(5, 5, 20, 15)
        a = rasterize_rect(rect, small_grid)
        b = rasterize_polygon(Polygon.from_rect(rect), small_grid)
        assert np.array_equal(a, b)

    def test_empty_outside_grid(self, small_grid):
        assert rasterize_rect(Rect(100, 100, 120, 120), small_grid).sum() == 0
