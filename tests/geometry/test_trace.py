"""Unit tests for mask boundary tracing."""

import numpy as np
import pytest

from repro.geometry.raster import PixelGrid, rasterize_polygon
from repro.geometry.trace import trace_all_boundaries, trace_boundary


@pytest.fixture()
def grid() -> PixelGrid:
    return PixelGrid(0.0, 0.0, 1.0, 30, 30)


class TestTraceBoundary:
    def test_single_rectangle(self, grid):
        mask = np.zeros(grid.shape, dtype=bool)
        mask[5:15, 3:23] = True
        poly = trace_boundary(mask, grid)
        assert poly.is_rectilinear()
        assert poly.area == 200.0
        assert poly.bounding_box().as_tuple() == (3.0, 5.0, 23.0, 15.0)

    def test_empty_mask_raises(self, grid):
        with pytest.raises(ValueError):
            trace_boundary(np.zeros(grid.shape, dtype=bool), grid)

    def test_shape_mismatch_raises(self, grid):
        with pytest.raises(ValueError):
            trace_boundary(np.zeros((5, 5), dtype=bool), grid)

    def test_single_pixel(self, grid):
        mask = np.zeros(grid.shape, dtype=bool)
        mask[10, 10] = True
        poly = trace_boundary(mask, grid)
        assert poly.area == 1.0

    def test_l_shape_vertex_count(self, grid):
        mask = np.zeros(grid.shape, dtype=bool)
        mask[2:10, 2:20] = True
        mask[10:25, 2:8] = True
        poly = trace_boundary(mask, grid)
        assert len(poly) == 6  # collinear vertices collapsed
        assert poly.area == float(mask.sum())

    def test_roundtrip_with_rasterizer(self, grid):
        """trace(rasterize(P)) reproduces the pixel set of P exactly."""
        from repro.geometry.polygon import Polygon

        original = Polygon([(2, 2), (25, 2), (25, 14), (12, 14), (12, 26), (2, 26)])
        mask = rasterize_polygon(original, grid)
        traced = trace_boundary(mask, grid)
        remask = rasterize_polygon(traced, grid)
        assert np.array_equal(mask, remask)


class TestTraceAll:
    def test_two_disjoint_regions(self, grid):
        mask = np.zeros(grid.shape, dtype=bool)
        mask[2:8, 2:8] = True
        mask[15:25, 15:28] = True
        polys = trace_all_boundaries(mask, grid)
        assert len(polys) == 2
        assert sorted(p.area for p in polys) == [36.0, 130.0]

    def test_largest_selected(self, grid):
        mask = np.zeros(grid.shape, dtype=bool)
        mask[2:8, 2:8] = True
        mask[15:25, 15:28] = True
        assert trace_boundary(mask, grid).area == 130.0

    def test_diagonal_touch_stays_separate(self, grid):
        mask = np.zeros(grid.shape, dtype=bool)
        mask[5:10, 5:10] = True
        mask[10:15, 10:15] = True  # touches only at corner (10,10)
        polys = trace_all_boundaries(mask, grid)
        assert len(polys) == 2

    def test_hole_produces_inner_loop(self, grid):
        mask = np.zeros(grid.shape, dtype=bool)
        mask[5:20, 5:20] = True
        mask[10:14, 10:14] = False
        polys = trace_all_boundaries(mask, grid)
        assert len(polys) == 2
        areas = sorted(p.area for p in polys)
        assert areas[0] == 16.0  # the hole loop
