"""Unit tests for summed-area tables."""

import numpy as np
import pytest

from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.geometry.sat import SummedAreaTable


@pytest.fixture()
def checkerboard(small_grid):
    field = np.indices(small_grid.shape).sum(axis=0) % 2 == 0
    return SummedAreaTable(field.astype(np.float64), small_grid), field


class TestWindowSum:
    def test_shape_mismatch_raises(self, small_grid):
        with pytest.raises(ValueError):
            SummedAreaTable(np.zeros((3, 3)), small_grid)

    def test_full_window_equals_total(self, checkerboard, small_grid):
        sat, field = checkerboard
        assert sat.window_sum(0, small_grid.ny, 0, small_grid.nx) == field.sum()

    def test_random_windows_match_numpy(self, small_grid):
        rng = np.random.default_rng(0)
        field = rng.random(small_grid.shape)
        sat = SummedAreaTable(field, small_grid)
        for _ in range(25):
            y1, y2 = sorted(rng.integers(0, small_grid.ny + 1, 2))
            x1, x2 = sorted(rng.integers(0, small_grid.nx + 1, 2))
            assert np.isclose(
                sat.window_sum(y1, y2, x1, x2), field[y1:y2, x1:x2].sum()
            )

    def test_out_of_range_clamped(self, checkerboard):
        sat, field = checkerboard
        assert sat.window_sum(-5, 1000, -5, 1000) == field.sum()

    def test_empty_window_is_zero(self, checkerboard):
        sat, _ = checkerboard
        assert sat.window_sum(5, 5, 0, 10) == 0.0


class TestRectQueries:
    def test_rect_sum_counts_covered_centres(self, small_grid):
        field = np.ones(small_grid.shape)
        sat = SummedAreaTable(field, small_grid)
        # Rect [2,2]..[6,5] covers centres 2.5..5.5 x, 2.5..4.5 y → 4x3.
        assert sat.rect_sum(Rect(2, 2, 6, 5)) == 12.0
        assert sat.rect_pixel_count(Rect(2, 2, 6, 5)) == 12

    def test_rect_fraction_inside_mask(self, small_grid):
        field = np.zeros(small_grid.shape)
        field[:, :25] = 1.0  # left half (x < 25) filled
        sat = SummedAreaTable(field, small_grid)
        assert sat.rect_fraction(Rect(0, 0, 25, 40)) == 1.0
        assert sat.rect_fraction(Rect(25, 0, 50, 40)) == 0.0
        assert abs(sat.rect_fraction(Rect(15, 0, 35, 40)) - 0.5) < 0.01

    def test_rect_fraction_empty_rect(self, small_grid):
        sat = SummedAreaTable(np.ones(small_grid.shape), small_grid)
        assert sat.rect_fraction(Rect(10.6, 10.6, 10.9, 10.9)) == 0.0

    def test_fraction_used_by_merge_rule(self, blob_shape):
        """The shape's own SAT reports ~1.0 deep inside, ~0 far outside."""
        bbox = blob_shape.polygon.bounding_box()
        center = bbox.center
        inner = Rect.from_center(center, 4, 4)
        if blob_shape.sat.rect_fraction(inner) > 0:  # centre may be outside
            assert 0.0 <= blob_shape.sat.rect_fraction(inner) <= 1.0
        outer = Rect(bbox.xtr + 10, bbox.ytr + 10, bbox.xtr + 20, bbox.ytr + 20)
        assert blob_shape.sat.rect_fraction(outer) == 0.0
