"""Smoke tests for the example scripts.

Every example must at least parse and import-check; the cheapest one
runs end to end so a broken public API surfaces here before a user hits
it.  (The heavier examples are exercised indirectly: they reuse the
exact library calls the integration tests cover.)
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_expected_examples_present(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "compare_methods.py",
            "mask_cost_analysis.py",
            "custom_shape.py",
            "dose_modulation.py",
            "ilt_to_shots.py",
            "render_figures.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_render_figures_runs(self, tmp_path):
        """The cheapest example end to end: writes all five figure SVGs."""
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES_DIR / "render_figures.py"),
                "--output", str(tmp_path),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        for number in range(1, 6):
            assert (tmp_path / f"figure{number}.svg").exists()


class TestCliBenchPath:
    def test_bench_table3_with_cheap_method(self, capsys):
        """The CLI bench command end to end with the fast baseline."""
        from repro.cli import main

        code = main(["bench", "--table", "3", "--methods", "partition", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AGB-1" in out and "RGB-5" in out
        assert "Sum norm." in out
