"""Unit tests for the PROTO-EDA proxy."""

from repro.baselines.proto_eda import ProtoEdaFracturer


class TestProtoEda:
    def test_rectangle_feasible(self, rect_shape, spec):
        result = ProtoEdaFracturer().fracture(rect_shape, spec)
        assert result.feasible
        assert result.shot_count <= 3

    def test_iteration_budget_respected(self, blob_shape, spec):
        result = ProtoEdaFracturer(nmax=5).fracture(blob_shape, spec)
        assert result.extra["iterations"] <= 5

    def test_loose_termination_leaves_failures_on_hard_shapes(self, blob_shape, spec):
        """With a permissive stop threshold the proxy may terminate with
        failing pixels — the published PROTO-EDA behaviour on wavy
        shapes."""
        loose = ProtoEdaFracturer(nmax=40, failing_fraction_stop=0.05)
        result = loose.fracture(blob_shape, spec)
        pixels = blob_shape.pixels(spec.gamma)
        assert result.report.total_failing <= 0.05 * pixels.count_on + 50

    def test_uses_conservative_graph_config(self):
        proxy = ProtoEdaFracturer()
        assert proxy.graph.min_overlap > 0.8
        assert proxy.graph.coloring_strategy == "given"

    def test_diagnostics_include_stage1(self, rect_shape, spec):
        result = ProtoEdaFracturer().fracture(rect_shape, spec)
        assert "corner_points" in result.extra
        assert "stop_threshold" in result.extra
