"""Unit tests for the greedy set cover baseline."""

from repro.baselines.gsc import GreedySetCoverFracturer, _grow_max_rect
from repro.geometry.rect import Rect


class TestGrowMaxRect:
    def test_grows_to_region_bounds(self, rect_shape, spec):
        seed = rect_shape.grid.index_of(rect_shape.polygon.centroid())
        rect = _grow_max_rect(rect_shape.inside, rect_shape, seed, spec.lmin)
        assert rect is not None
        # The rectangle should essentially fill the 60x40 target.
        assert rect.width >= 55 and rect.height >= 35

    def test_seed_outside_region_none(self, rect_shape, spec):
        rect = _grow_max_rect(rect_shape.inside, rect_shape, (0, 0), spec.lmin)
        assert rect is None

    def test_respects_concavity(self, l_shape, spec):
        # Seed deep in the vertical arm: growth must not cross the notch.
        seed = l_shape.grid.index_of(l_shape.polygon.vertices[0])
        from repro.geometry.point import Point

        seed = l_shape.grid.index_of(Point(20.0, 60.0))
        rect = _grow_max_rect(l_shape.inside, l_shape, seed, spec.lmin)
        assert rect is not None
        assert rect.xtr <= 41.0

    def test_enforces_min_size(self, rect_shape, spec):
        from repro.geometry.point import Point

        seed = rect_shape.grid.index_of(Point(30.0, 20.0))
        rect = _grow_max_rect(rect_shape.inside, rect_shape, seed, spec.lmin)
        assert rect is not None and rect.meets_min_size(spec.lmin)


class TestGscFracturing:
    def test_rectangle_single_shot(self, rect_shape, spec):
        result = GreedySetCoverFracturer().fracture(rect_shape, spec)
        assert 1 <= result.shot_count <= 3

    def test_covers_all_on_pixels_or_stops(self, l_shape, spec):
        result = GreedySetCoverFracturer().fracture(l_shape, spec)
        # GSC keeps adding while net gain is positive; the L is easy
        # enough that on-coverage should complete.
        assert result.report.count_on <= 5

    def test_shot_cap_respected(self, blob_shape, spec):
        result = GreedySetCoverFracturer(max_shots=3).fracture(blob_shape, spec)
        assert result.shot_count <= 3

    def test_shots_meet_min_size(self, blob_shape, spec):
        result = GreedySetCoverFracturer().fracture(blob_shape, spec)
        assert all(s.meets_min_size(spec.lmin - 1e-9) for s in result.shots)

    def test_more_shots_than_ours_on_curvy(self, blob_shape, spec):
        """The headline ordering: GSC needs at least as many shots as the
        coloring + refinement method on a curvy shape."""
        from repro.fracture.pipeline import ModelBasedFracturer

        gsc = GreedySetCoverFracturer().fracture(blob_shape, spec)
        ours = ModelBasedFracturer().fracture(blob_shape, spec)
        assert gsc.shot_count >= ours.shot_count
