"""Unit tests for the matching pursuit baseline."""

import numpy as np

from repro.baselines.matching_pursuit import (
    MatchingPursuitFracturer,
    _densify,
    _intervals,
)


class TestLatticeHelpers:
    def test_densify_inserts_intermediate_coords(self):
        out = _densify([0.0, 40.0], spacing=8.0)
        assert out[0] == 0.0 and out[-1] == 40.0
        assert len(out) >= 5
        assert (np.diff(out) <= 8.0 + 1e-9).all()

    def test_densify_keeps_close_coords(self):
        out = _densify([0.0, 5.0, 9.0], spacing=8.0)
        assert list(out) == [0.0, 5.0, 9.0]

    def test_intervals_respect_lmin(self):
        pairs = _intervals(np.array([0.0, 5.0, 12.0, 30.0]), lmin=10.0)
        assert (0.0, 5.0) not in pairs
        assert (0.0, 12.0) in pairs
        assert all(hi - lo >= 10.0 for lo, hi in pairs)


class TestMpFracturing:
    def test_rectangle_one_or_two_shots(self, rect_shape, spec):
        result = MatchingPursuitFracturer().fracture(rect_shape, spec)
        assert 1 <= result.shot_count <= 3

    def test_shot_cap(self, blob_shape, spec):
        result = MatchingPursuitFracturer(max_shots=4).fracture(blob_shape, spec)
        assert result.shot_count <= 4

    def test_shots_on_feature_lattice(self, rect_shape, spec):
        result = MatchingPursuitFracturer().fracture(rect_shape, spec)
        for shot in result.shots:
            assert shot.meets_min_size(spec.lmin - 1e-9)

    def test_dictionary_size_reported(self, rect_shape, spec):
        result = MatchingPursuitFracturer().fracture(rect_shape, spec)
        assert result.extra["dictionary_size"] > 0

    def test_off_penalty_controls_overexposure(self, l_shape, spec):
        """Without the off-target penalty MP greedily overexposes the
        notch; with it the off-failure count drops."""
        lax = MatchingPursuitFracturer(off_penalty=0.0).fracture(l_shape, spec)
        strict = MatchingPursuitFracturer(off_penalty=0.9).fracture(l_shape, spec)
        assert strict.report.count_off <= lax.report.count_off
