"""Unit tests for the conventional partition baseline."""

import pytest

from repro.baselines.partition_fracture import PartitionFracturer


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            PartitionFracturer(engine="quantum")

    def test_auto_uses_optimal_for_small_rectilinear(self, rect_shape, spec):
        result = PartitionFracturer().fracture(rect_shape, spec)
        assert result.extra["engine"] == "optimal"
        assert result.shot_count == 1

    def test_auto_uses_scanline_for_big_contours(self, spec):
        from repro.geometry.polygon import Polygon
        from repro.mask.shape import MaskShape

        # A 100-step staircase: 202 vertices, beyond the optimal-engine
        # threshold.
        verts = [(0.0, 0.0), (300.0, 0.0)]
        for k in range(100):
            x = 300.0 - 3.0 * k
            verts += [(x, 20.0 + 2.0 * k), (x - 3.0, 20.0 + 2.0 * k)]
        verts += [(0.0, 220.0)]
        shape = MaskShape.from_polygon(Polygon(verts), margin=10.0, name="stairs")
        result = PartitionFracturer().fracture(shape, spec)
        assert result.extra["engine"] == "scanline"

    def test_forced_scanline(self, rect_shape, spec):
        result = PartitionFracturer(engine="scanline").fracture(rect_shape, spec)
        assert result.extra["engine"] == "scanline"
        assert result.shot_count == 1


class TestConventionalWeakness:
    def test_l_shape_optimal_two(self, l_shape, spec):
        result = PartitionFracturer().fracture(l_shape, spec)
        assert result.shot_count == 2

    def test_curvy_shape_explodes(self, blob_shape, spec):
        """The motivating observation: geometric partitioning needs far
        more shots than model-based methods on ILT contours."""
        from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig

        partition = PartitionFracturer().fracture(blob_shape, spec)
        ours = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            blob_shape, spec
        )
        assert partition.shot_count > 3 * ours.shot_count

    def test_partition_produces_slivers_on_staircase(self, blob_shape, spec):
        """Pixel-level partitioning violates the writer's Lmin — the
        sliver problem of [6, 7]."""
        result = PartitionFracturer().fracture(blob_shape, spec)
        assert result.report.undersize_shots > 0
