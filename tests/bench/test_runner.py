"""Unit tests for the suite runner and result aggregation."""

import pytest

from repro.baselines import PartitionFracturer
from repro.bench.runner import ClipResult, SuiteResult, run_suite
from repro.bench.shapes import rgb_suite
from repro.fracture.graph_color import GraphColoringFracturer


@pytest.fixture(scope="module")
def small_suite(spec_module):
    return run_suite(
        rgb_suite()[:2],
        [PartitionFracturer(), GraphColoringFracturer()],
        spec_module,
    )


@pytest.fixture(scope="module")
def spec_module():
    from repro.mask.constraints import FractureSpec

    return FractureSpec()


class TestRunSuite:
    def test_all_clips_and_methods_present(self, small_suite):
        assert len(small_suite.clips) == 2
        assert small_suite.methods() == ["PARTITION", "GC-INIT"]
        for clip in small_suite.clips:
            assert set(clip.results) == {"PARTITION", "GC-INIT"}

    def test_known_optimal_propagated(self, small_suite):
        assert small_suite.clips[0].optimal == 5  # RGB-1

    def test_normalization_uses_optimal(self, small_suite):
        clip = small_suite.clips[0]
        norm = clip.normalized_shot_count("PARTITION")
        assert norm == clip.results["PARTITION"].shot_count / 5

    def test_sum_normalized(self, small_suite):
        total = small_suite.sum_normalized("PARTITION")
        parts = sum(
            c.normalized_shot_count("PARTITION") for c in small_suite.clips
        )
        assert total == pytest.approx(parts)

    def test_totals(self, small_suite):
        assert small_suite.total_shots("PARTITION") == sum(
            c.results["PARTITION"].shot_count for c in small_suite.clips
        )
        assert small_suite.total_runtime("PARTITION") >= 0.0


class TestClipResult:
    def test_missing_method_none(self):
        clip = ClipResult(shape_name="x", results={}, optimal=5)
        assert clip.normalized_shot_count("nope") is None

    def test_no_reference_none(self):
        clip = ClipResult(shape_name="x", results={})
        assert clip.normalized_shot_count("any") is None

    def test_upper_bound_fallback(self, small_suite):
        clip = small_suite.clips[0]
        fallback = ClipResult(
            shape_name=clip.shape_name,
            results=clip.results,
            upper_bound=7,
        )
        norm = fallback.normalized_shot_count("PARTITION")
        assert norm == clip.results["PARTITION"].shot_count / 7


class TestSuiteResultEdgeCases:
    def test_empty_suite(self):
        suite = SuiteResult()
        assert suite.methods() == []
        assert suite.sum_normalized("x") is None
        assert suite.total_shots("x") == 0
