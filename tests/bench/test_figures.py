"""Unit tests for the paper-figure renderers."""

import pytest

from repro.bench.figures import FIGURES, render_figure


class TestRenderFigure:
    @pytest.mark.parametrize("number", sorted(FIGURES))
    def test_every_figure_is_valid_svg(self, number):
        svg = render_figure(number)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert f"Fig.{number}" in svg

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            render_figure(6)

    def test_figure2_shows_lth_value(self, spec):
        svg = render_figure(2, spec)
        assert f"Lth = {spec.lth:.1f}" in svg

    def test_figure1_reports_vertex_reduction(self):
        svg = render_figure(1)
        assert "RDP (" in svg and "corner points" in svg

    def test_figures_parse_as_xml(self):
        import xml.etree.ElementTree as ET

        for number in FIGURES:
            ET.fromstring(render_figure(number))
