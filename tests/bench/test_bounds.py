"""Unit tests for shot-count bounds."""

from repro.bench.bounds import lower_bound_shots, upper_bound_shots
from repro.fracture.base import FractureResult
from repro.mask.constraints import FailureReport

import numpy as np


def _result(shots: int, feasible: bool) -> FractureResult:
    fail = np.zeros((2, 2), dtype=bool)
    if not feasible:
        fail = np.ones((2, 2), dtype=bool)
    from repro.geometry.rect import Rect

    return FractureResult(
        method="x",
        shape_name="s",
        shots=[Rect(0, 0, 10, 10)] * shots,
        runtime_s=0.0,
        report=FailureReport(fail_on=fail, fail_off=np.zeros_like(fail), cost=0.0),
    )


class TestLowerBound:
    def test_rectangle_is_one(self, rect_shape, spec):
        assert lower_bound_shots(rect_shape, spec) == 1

    def test_l_shape_at_least_two(self, l_shape, spec):
        assert lower_bound_shots(l_shape, spec) >= 2

    def test_never_exceeds_feasible_solution(self, blob_shape, spec):
        """Soundness against an actual feasible solution."""
        from repro.fracture.pipeline import ModelBasedFracturer

        result = ModelBasedFracturer().fracture(blob_shape, spec)
        if result.feasible:
            lb = lower_bound_shots(blob_shape, spec)
            assert lb <= result.shot_count

    def test_generator_construction_soundness(self, spec):
        """LB must not exceed the known construction count K."""
        from repro.bench.shapes import rgb_suite

        for ko in rgb_suite():
            lb = lower_bound_shots(ko.shape, spec)
            assert lb <= ko.optimal_shots


class TestUpperBound:
    def test_min_feasible_selected(self):
        results = [_result(5, True), _result(3, True), _result(2, False)]
        assert upper_bound_shots(results) == 3

    def test_all_infeasible_is_none(self):
        assert upper_bound_shots([_result(2, False)]) is None

    def test_empty_is_none(self):
        assert upper_bound_shots([]) is None
