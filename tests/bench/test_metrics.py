"""Unit tests for solution metrics."""

import pytest

from repro.bench.metrics import solution_metrics
from repro.geometry.rect import Rect


class TestSolutionMetrics:
    def test_empty_solution(self, rect_shape, spec):
        metrics = solution_metrics([], rect_shape, spec)
        assert metrics.shot_count == 0
        assert metrics.overlap_ratio == 0.0
        assert metrics.write_time_s == 0.0

    def test_single_shot(self, rect_shape, spec):
        metrics = solution_metrics([Rect(0, 0, 60, 40)], rect_shape, spec)
        assert metrics.shot_count == 1
        assert metrics.overlap_ratio == pytest.approx(1.0)
        assert metrics.min_shot_side == 40.0
        assert metrics.max_shot_side == 60.0
        assert metrics.sliver_count == 0

    def test_overlap_ratio_counts_double_exposure(self, rect_shape, spec):
        shots = [Rect(0, 0, 40, 40), Rect(20, 0, 60, 40)]
        metrics = solution_metrics(shots, rect_shape, spec)
        assert metrics.overlap_ratio == pytest.approx(3200 / 2400)

    def test_sliver_detection(self, rect_shape, spec):
        shots = [Rect(0, 0, 60, 40), Rect(0, 0, 5, 40)]
        metrics = solution_metrics(shots, rect_shape, spec)
        assert metrics.sliver_count == 1

    def test_coverage_ratio_overhang(self, rect_shape, spec):
        metrics = solution_metrics([Rect(-10, -10, 70, 50)], rect_shape, spec)
        assert metrics.coverage_ratio > 1.0

    def test_write_time_proportional_to_shots(self, rect_shape, spec):
        one = solution_metrics([Rect(0, 0, 60, 40)], rect_shape, spec)
        two = solution_metrics(
            [Rect(0, 0, 30, 40), Rect(30, 0, 60, 40)], rect_shape, spec
        )
        assert two.write_time_s == pytest.approx(2 * one.write_time_s)
