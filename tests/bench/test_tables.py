"""Unit tests for table formatting."""

import numpy as np
import pytest

from repro.bench.runner import ClipResult, SuiteResult
from repro.bench.tables import format_table2, format_table3
from repro.fracture.base import FractureResult
from repro.geometry.rect import Rect
from repro.mask.constraints import FailureReport


def _result(method: str, shots: int, runtime: float, failing: int = 0) -> FractureResult:
    fail = np.zeros((4, 4), dtype=bool)
    fail.flat[:failing] = True
    return FractureResult(
        method=method,
        shape_name="clip",
        shots=[Rect(0, 0, 10, 10)] * shots,
        runtime_s=runtime,
        report=FailureReport(
            fail_on=fail, fail_off=np.zeros_like(fail), cost=float(failing)
        ),
    )


@pytest.fixture()
def suite() -> SuiteResult:
    suite = SuiteResult()
    suite.clips.append(
        ClipResult(
            shape_name="ILT-1",
            results={"GSC": _result("GSC", 14, 0.5), "OURS": _result("OURS", 6, 1.0)},
            lower_bound=3,
            upper_bound=4,
        )
    )
    suite.clips.append(
        ClipResult(
            shape_name="ILT-2",
            results={
                "GSC": _result("GSC", 18, 3.0),
                "OURS": _result("OURS", 13, 1.5, failing=2),
            },
            lower_bound=5,
            upper_bound=9,
        )
    )
    return suite


class TestTable2:
    def test_contains_all_rows(self, suite):
        text = format_table2(suite)
        assert "ILT-1" in text and "ILT-2" in text
        assert "3/4" in text and "5/9" in text
        assert "Sum norm." in text

    def test_normalized_sum_value(self, suite):
        text = format_table2(suite)
        expected = 14 / 4 + 18 / 9
        assert f"{expected:.2f}" in text

    def test_failing_marker(self, suite):
        assert "13*2" in format_table2(suite)

    def test_method_selection(self, suite):
        text = format_table2(suite, methods=["OURS"])
        assert "GSC" not in text


class TestTable3:
    def _known_suite(self) -> SuiteResult:
        suite = SuiteResult()
        suite.clips.append(
            ClipResult(
                shape_name="AGB-1",
                results={"OURS": _result("OURS", 5, 0.1)},
                optimal=3,
            )
        )
        return suite

    def test_optimal_column(self):
        text = format_table3(self._known_suite())
        assert "AGB-1" in text
        assert f"{5 / 3:.2f}" in text

    def test_header_mentions_optimal(self):
        assert "Optimal" in format_table3(self._known_suite())
