"""Unit tests for the benchmark shape generators."""

import numpy as np
import pytest

from repro.bench.shapes import (
    AGB_OPTIMA,
    RGB_OPTIMA,
    agb_suite,
    ilt_suite,
    rgb_suite,
)
from repro.ebeam.intensity_map import IntensityMap
from repro.mask.constraints import FractureSpec, check_solution


@pytest.fixture(scope="module")
def ilt_shapes():
    return ilt_suite()


@pytest.fixture(scope="module")
def known_shapes():
    return agb_suite() + rgb_suite()


class TestIltSuite:
    def test_ten_clips_named(self, ilt_shapes):
        assert len(ilt_shapes) == 10
        assert [s.name for s in ilt_shapes] == [f"ILT-{i}" for i in range(1, 11)]

    def test_deterministic(self, ilt_shapes):
        again = ilt_suite()
        for a, b in zip(ilt_shapes, again):
            assert np.array_equal(a.inside, b.inside)

    def test_curvilinear_character(self, ilt_shapes):
        """ILT contours have many vertices — pixel-level curvature."""
        assert all(s.vertex_count > 50 for s in ilt_shapes)

    def test_single_connected_polygon(self, ilt_shapes):
        from repro.geometry.labeling import label_components

        for shape in ilt_shapes:
            _, count = label_components(shape.inside)
            assert count == 1

    def test_reasonable_sizes(self, ilt_shapes):
        for shape in ilt_shapes:
            assert 3_000 < shape.area < 60_000  # nm²

    def test_mrc_no_thin_necks(self, ilt_shapes):
        """MRC cleanup guarantees a disc of radius ~5 fits everywhere:
        erosion by radius 4 must keep every region non-trivial."""
        from scipy.ndimage import binary_erosion

        span = np.arange(-4, 5)
        disc = (span[:, None] ** 2 + span[None, :] ** 2) <= 16
        for shape in ilt_shapes:
            eroded = binary_erosion(shape.inside, structure=disc)
            assert eroded.sum() > 0.2 * shape.inside.sum()


class TestKnownOptimalSuites:
    def test_counts_match_table3(self, known_shapes):
        assert tuple(k.optimal_shots for k in known_shapes[:5]) == AGB_OPTIMA
        assert tuple(k.optimal_shots for k in known_shapes[5:]) == RGB_OPTIMA

    def test_names(self, known_shapes):
        names = [k.shape.name for k in known_shapes]
        assert names[:5] == [f"AGB-{i}" for i in range(1, 6)]
        assert names[5:] == [f"RGB-{i}" for i in range(1, 6)]

    def test_generator_shots_reproduce_shape(self, known_shapes, spec):
        """The construction guarantee: the K generator shots are a
        feasible solution of the generated instance."""
        for ko in known_shapes:
            report = check_solution(list(ko.generator_shots), ko.shape, spec)
            assert report.feasible, f"{ko.shape.name}: {report.total_failing} failing"

    def test_generator_shots_meet_min_size(self, known_shapes, spec):
        for ko in known_shapes:
            assert all(
                s.meets_min_size(spec.lmin - 1e-9) for s in ko.generator_shots
            )

    def test_target_is_rho_contour(self, known_shapes, spec):
        """Inside mask equals {I_tot >= rho} of the generator shots (up
        to the largest-component filter)."""
        ko = known_shapes[0]
        imap = IntensityMap(ko.shape.grid, spec.sigma)
        for shot in ko.generator_shots:
            imap.add(shot)
        contour_mask = imap.total >= spec.rho
        overlap = (contour_mask & ko.shape.inside).sum()
        assert overlap >= 0.99 * ko.shape.inside.sum()

    def test_deterministic(self, known_shapes):
        again = agb_suite() + rgb_suite()
        for a, b in zip(known_shapes, again):
            assert a.generator_shots == b.generator_shots


class TestSrafSuite:
    def test_five_clips(self):
        from repro.bench.shapes import sraf_suite

        shapes = sraf_suite()
        assert [s.name for s in shapes] == [f"SRAF-{i}" for i in range(1, 6)]

    def test_skinny_geometry(self):
        from repro.bench.shapes import sraf_suite

        for shape in sraf_suite():
            bbox = shape.polygon.bounding_box()
            aspect = max(bbox.width, bbox.height) / min(bbox.width, bbox.height)
            assert aspect > 3.0  # bars, not blobs

    def test_deterministic(self):
        from repro.bench.shapes import sraf_suite

        a = sraf_suite()
        b = sraf_suite()
        for x, y in zip(a, b):
            assert np.array_equal(x.inside, y.inside)

    def test_fracturable(self, spec):
        from repro.bench.shapes import sraf_suite
        from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig

        shape = sraf_suite()[0]
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            shape, spec
        )
        assert result.shot_count <= 6
