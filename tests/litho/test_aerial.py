"""Unit tests for the aerial-image model."""

import numpy as np
import pytest

from repro.litho.aerial import AerialImageModel


@pytest.fixture()
def bar_mask():
    mask = np.zeros((200, 200))
    mask[80:120, 40:160] = 1.0
    return mask


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AerialImageModel(optical_blur=0.0)
        with pytest.raises(ValueError):
            AerialImageModel(resist_steepness=-1.0)
        with pytest.raises(ValueError):
            AerialImageModel(threshold=1.0)


class TestAerialImage:
    def test_blur_conserves_energy(self, bar_mask):
        model = AerialImageModel()
        aerial = model.aerial_image(bar_mask)
        assert np.isclose(aerial.sum(), bar_mask.sum(), rtol=1e-6)

    def test_values_bounded(self, bar_mask):
        aerial = AerialImageModel().aerial_image(bar_mask)
        assert aerial.min() >= 0.0 and aerial.max() <= 1.0 + 1e-12

    def test_center_bright_edges_dark(self, bar_mask):
        aerial = AerialImageModel().aerial_image(bar_mask)
        assert aerial[100, 100] > 0.8
        assert aerial[10, 10] < 1e-3


class TestResist:
    def test_sigmoid_midpoint(self):
        model = AerialImageModel(threshold=0.5)
        assert model.resist_response(np.array(0.5)) == pytest.approx(0.5)

    def test_saturation(self):
        model = AerialImageModel()
        assert model.resist_response(np.array(1.0)) > 0.99
        assert model.resist_response(np.array(0.0)) < 0.01

    def test_derivative_peaks_at_threshold(self):
        model = AerialImageModel()
        levels = np.array([0.2, 0.5, 0.8])
        deriv = model.resist_derivative(levels)
        assert deriv[1] > deriv[0] and deriv[1] > deriv[2]


class TestPrinting:
    def test_large_feature_prints(self, bar_mask):
        model = AerialImageModel()
        printed = model.printed_pattern(bar_mask)
        assert printed[100, 100]
        assert not printed[10, 10]

    def test_sub_resolution_feature_vanishes(self):
        model = AerialImageModel(optical_blur=12.0)
        mask = np.zeros((100, 100))
        mask[48:52, 48:52] = 1.0  # 4px dot, far below the blur scale
        assert not model.printed_pattern(mask).any()

    def test_edge_placement_error_zero_for_ideal(self, bar_mask):
        model = AerialImageModel()
        target = model.printed_pattern(bar_mask)
        assert model.edge_placement_error(bar_mask, target) == 0.0
