"""Unit tests for the inverse-lithography optimizer."""

import numpy as np
import pytest

from repro.litho.aerial import AerialImageModel
from repro.litho.ilt import InverseLithoOptimizer, ilt_optimized_suite


@pytest.fixture(scope="module")
def bar_target():
    target = np.zeros((220, 220), dtype=bool)
    target[90:132, 50:170] = True
    return target


@pytest.fixture(scope="module")
def bar_result(bar_target):
    return InverseLithoOptimizer(iterations=80).optimize(bar_target)


class TestOptimizer:
    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            InverseLithoOptimizer(iterations=0)

    def test_loss_decreases(self, bar_result):
        assert bar_result.loss_history[-1] < bar_result.loss_history[0]
        assert bar_result.converged

    def test_prints_close_to_target(self, bar_target, bar_result):
        assert bar_result.edge_error < 0.02  # < 2 % pixel disagreement

    def test_mask_beats_drawn_pattern(self, bar_target, bar_result):
        """The optimized mask must print the target more faithfully than
        simply writing the drawn pattern — the whole point of ILT."""
        model = AerialImageModel()
        drawn_error = model.edge_placement_error(
            bar_target.astype(np.float64), bar_target
        )
        assert bar_result.edge_error < drawn_error

    def test_mask_is_curvilinear(self, bar_target, bar_result):
        """ILT output differs from the drawn rectangle (flares, bias)."""
        assert bar_result.mask.sum() != bar_target.sum() or (
            bar_result.mask != bar_target
        ).any()

    def test_mask_manufacturable(self, bar_result):
        """A ~5px disc must fit everywhere (MRC cleanup)."""
        from scipy.ndimage import binary_opening

        span = np.arange(-4, 5)
        disc = (span[:, None] ** 2 + span[None, :] ** 2) <= 16
        opened = binary_opening(bar_result.mask, structure=disc)
        assert opened.sum() > 0.5 * bar_result.mask.sum()

    def test_deterministic(self, bar_target):
        a = InverseLithoOptimizer(iterations=25).optimize(bar_target)
        b = InverseLithoOptimizer(iterations=25).optimize(bar_target)
        assert np.array_equal(a.mask, b.mask)


class TestOptimizedSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return ilt_optimized_suite()

    def test_five_named_clips(self, suite):
        assert [s.name for s in suite] == [f"ILT-OPT-{i}" for i in range(1, 6)]

    def test_curvy_many_vertex_contours(self, suite):
        assert all(s.vertex_count > 60 for s in suite)

    def test_fracturable_majority(self, suite, spec):
        """At least the simple clips must fracture CD-clean (ILT-OPT-5's
        thin curvy bridges are the documented hard case)."""
        from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig

        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            suite[0], spec
        )
        assert result.shot_count >= 2
