"""Shared fixtures: model spec, small targets, fast pipeline configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


@pytest.fixture(scope="session")
def spec() -> FractureSpec:
    """The paper's experimental parameters (§5)."""
    return FractureSpec()


@pytest.fixture(scope="session")
def rect_shape(spec) -> MaskShape:
    """A 60x40 nm rectangle target — the simplest feasible instance."""
    polygon = Polygon([(0, 0), (60, 0), (60, 40), (0, 40)])
    return MaskShape.from_polygon(polygon, margin=spec.grid_margin, name="rect")


@pytest.fixture(scope="session")
def l_shape(spec) -> MaskShape:
    """An L-shaped target with one concave corner."""
    polygon = Polygon([(0, 0), (80, 0), (80, 30), (40, 30), (40, 70), (0, 70)])
    return MaskShape.from_polygon(polygon, margin=spec.grid_margin, name="L")


@pytest.fixture(scope="session")
def blob_shape(spec) -> MaskShape:
    """A small curvy target from a blurred-threshold mask (ILT-like)."""
    from scipy.ndimage import gaussian_filter

    rng = np.random.default_rng(5)
    grid = PixelGrid(0.0, 0.0, 1.0, 180, 180)
    field = np.zeros(grid.shape)
    field[70:110, 40:140] = 1.0
    noise = gaussian_filter(rng.standard_normal(grid.shape), 6.0)
    noise /= np.abs(noise).max()
    mask = (gaussian_filter(field, 8.0) + 0.3 * noise) > 0.42
    from repro.geometry.labeling import label_components

    labels, count = label_components(mask)
    sizes = np.bincount(labels.ravel())
    sizes[0] = 0
    mask = labels == int(sizes.argmax())
    return MaskShape.from_mask(mask, grid, name="blob")


@pytest.fixture()
def small_grid() -> PixelGrid:
    return PixelGrid(0.0, 0.0, 1.0, 50, 40)
