"""The kernel-backend seam: registry, selection, capability contract."""

from __future__ import annotations

import numpy as np
import pytest

import repro.kernels as kernels
from repro.kernels import (
    BackendUnavailable,
    KernelBackend,
    available_backends,
    get_backend,
    kernels_manifest,
    register_backend,
    set_backend,
    use_backend,
)


@pytest.fixture(autouse=True)
def _restore_active_backend():
    """Backend selection is process-global; never leak it across tests."""
    saved = kernels._ACTIVE
    yield
    with kernels._LOCK:
        kernels._ACTIVE = saved


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert {"numpy", "scalar", "cupy"} <= set(names)

    def test_set_backend_by_name(self):
        backend = set_backend("scalar")
        assert backend.name == "scalar"
        assert get_backend() is backend

    def test_set_backend_by_instance(self):
        instance = set_backend("numpy")
        assert set_backend(instance) is instance
        assert get_backend() is instance

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="scalar"):
            set_backend("no-such-backend")

    def test_use_backend_restores_previous(self):
        before = set_backend("numpy")
        with use_backend("scalar") as scoped:
            assert scoped.name == "scalar"
            assert get_backend() is scoped
        assert get_backend() is before

    def test_env_var_resolved_on_first_use(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "scalar")
        with kernels._LOCK:
            kernels._ACTIVE = None
        assert get_backend().name == "scalar"

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        with kernels._LOCK:
            kernels._ACTIVE = None
        assert get_backend().name == kernels.DEFAULT_BACKEND == "numpy"

    def test_custom_backend_registration(self):
        class Dummy(KernelBackend):
            name = "dummy-test"

        try:
            register_backend("dummy-test", Dummy)
            assert "dummy-test" in available_backends()
            assert set_backend("dummy-test").name == "dummy-test"
        finally:
            with kernels._LOCK:
                kernels._REGISTRY.pop("dummy-test", None)

    def test_cupy_gated_without_cupy(self):
        try:
            import cupy  # noqa: F401
        except ImportError:
            pass
        else:  # pragma: no cover - env dependent
            pytest.skip("cupy installed; gating path not reachable")
        with pytest.raises(BackendUnavailable, match="cupy"):
            set_backend("cupy")


class TestCapabilities:
    def test_numpy_capabilities(self):
        backend = set_backend("numpy")
        assert backend.fused_pricing and backend.crop_stitch_field
        assert isinstance(backend.fused_band_limit, int)
        assert backend.fused_band_limit > 0

    def test_scalar_is_pure_oracle(self):
        backend = set_backend("scalar")
        assert not backend.fused_pricing
        assert not backend.crop_stitch_field

    def test_manifest_records_backend_and_variants(self):
        set_backend("numpy")
        manifest = kernels_manifest()
        assert manifest["backend"] == "numpy"
        assert set(manifest["variants"]) == {"labeling", "pricing", "stitch_field"}
        assert manifest["variants"]["labeling"] == "run_length_row_merge"
        set_backend("scalar")
        assert kernels_manifest()["variants"]["labeling"] == "python_union_find"


class TestComponentStats:
    def test_stats_match_across_backends(self):
        rng = np.random.default_rng(7)
        mask = rng.random((40, 50)) < 0.4
        labels, count = set_backend("numpy").label_components(mask)
        stats_n = get_backend().component_stats(labels, count)
        stats_s = set_backend("scalar").component_stats(labels, count)
        for a, b in zip(stats_n, stats_s):
            assert np.array_equal(a, b)


class TestCliSelection:
    def test_unknown_kernels_flag_is_a_clean_error(self):
        import argparse

        from repro.cli import _apply_kernels

        with pytest.raises(SystemExit, match="available"):
            _apply_kernels(argparse.Namespace(kernels="bogus"))

    def test_kernels_flag_installs_backend(self):
        import argparse

        from repro.cli import _apply_kernels

        _apply_kernels(argparse.Namespace(kernels="scalar"))
        assert get_backend().name == "scalar"
