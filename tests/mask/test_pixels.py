"""Unit tests for pixel classification (P_on / P_off / P_x)."""

import numpy as np
import pytest

from repro.geometry.raster import PixelGrid
from repro.mask.pixels import PixelSets, boundary_distance, classify_pixels


@pytest.fixture()
def square_mask(small_grid):
    mask = np.zeros(small_grid.shape, dtype=bool)
    mask[10:30, 10:40] = True
    return mask


class TestBoundaryDistance:
    def test_shape_mismatch_raises(self, small_grid):
        with pytest.raises(ValueError):
            boundary_distance(np.zeros((3, 3), dtype=bool), small_grid)

    def test_zero_adjacent_to_boundary(self, square_mask, small_grid):
        d = boundary_distance(square_mask, small_grid)
        # Pixels adjacent to the boundary report ~half a pixel.
        assert d[10, 10] <= 0.5 + 1e-9
        assert d[9, 10] <= 0.5 + 1e-9

    def test_grows_away_from_boundary(self, square_mask, small_grid):
        d = boundary_distance(square_mask, small_grid)
        assert d[20, 25] > 5.0  # deep inside
        assert d[0, 0] > 5.0  # far outside

    def test_respects_pitch(self, square_mask):
        fine = PixelGrid(0, 0, 1.0, 50, 40)
        d1 = boundary_distance(square_mask, fine)
        coarse = PixelGrid(0, 0, 2.0, 50, 40)
        d2 = boundary_distance(square_mask, coarse)
        assert np.isclose(d2[20, 25], 2 * d1[20, 25] + 0.5, atol=1.0)


class TestClassify:
    def test_negative_gamma_raises(self, square_mask, small_grid):
        with pytest.raises(ValueError):
            classify_pixels(square_mask, small_grid, -1.0)

    def test_partition_property(self, square_mask, small_grid):
        pixels = classify_pixels(square_mask, small_grid, 2.0)
        assert pixels.is_partition()

    def test_on_inside_off_outside(self, square_mask, small_grid):
        pixels = classify_pixels(square_mask, small_grid, 2.0)
        assert pixels.on[20, 25] and not pixels.off[20, 25]
        assert pixels.off[0, 0] and not pixels.on[0, 0]

    def test_band_hugs_boundary(self, square_mask, small_grid):
        pixels = classify_pixels(square_mask, small_grid, 2.0)
        assert pixels.band[10, 20]  # first inside row
        assert pixels.band[9, 20]  # first outside row
        assert not pixels.band[20, 25]

    def test_band_width_scales_with_gamma(self, square_mask, small_grid):
        narrow = classify_pixels(square_mask, small_grid, 1.0)
        wide = classify_pixels(square_mask, small_grid, 4.0)
        assert wide.count_band > narrow.count_band
        assert wide.count_on < narrow.count_on

    def test_zero_gamma_still_partitions(self, square_mask, small_grid):
        pixels = classify_pixels(square_mask, small_grid, 0.0)
        assert pixels.is_partition()

    def test_counts_sum_to_grid(self, square_mask, small_grid):
        pixels = classify_pixels(square_mask, small_grid, 2.0)
        total = pixels.count_on + pixels.count_off + pixels.count_band
        assert total == small_grid.nx * small_grid.ny


class TestPixelSets:
    def test_mismatched_shapes_raise(self):
        a = np.zeros((3, 3), dtype=bool)
        b = np.zeros((4, 4), dtype=bool)
        with pytest.raises(ValueError):
            PixelSets(on=a, off=b, band=a)

    def test_is_partition_detects_overlap(self):
        a = np.ones((2, 2), dtype=bool)
        z = np.zeros((2, 2), dtype=bool)
        assert not PixelSets(on=a, off=a, band=z).is_partition()
        assert PixelSets(on=a, off=z, band=z).is_partition()
