"""Unit tests for the multi-shape MDP pipeline."""

import json

from repro.baselines import PartitionFracturer
from repro.mask.mdp import MdpPipeline, MdpReport
from repro.obs import TelemetryRecorder, recording


class TestMdpPipeline:
    def test_batch_run(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape, l_shape])
        assert len(report.results) == 2
        assert report.total_shots >= 3  # 1 for rect, 2 for L
        assert report.shots_per_shape() == report.total_shots / 2

    def test_writes_solutions(self, rect_shape, spec, tmp_path):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        pipeline.run([rect_shape], output_dir=tmp_path)
        path = tmp_path / "rect.solution.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["metadata"]["method"] == "PARTITION"

    def test_projected_saving(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        base = pipeline.run([rect_shape, l_shape])
        # Fake an improved flow with 10% fewer shots.
        improved = MdpReport(results=base.results[:1])
        saving = pipeline.projected_saving(base, improved)
        assert 0.0 < saving["shot_reduction"] <= 1.0
        import pytest

        assert saving["mask_cost_saving_fraction"] == pytest.approx(
            0.2 * saving["shot_reduction"]
        )
        assert saving["mask_set_saving_usd"] > 0.0

    def test_projected_saving_empty_baseline(self, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        import pytest

        with pytest.raises(ValueError):
            pipeline.projected_saving(MdpReport(), MdpReport())

    def test_summary_mentions_totals(self, rect_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape])
        assert "total:" in report.summary()


class TestParallelMdp:
    def test_parallel_matches_serial(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        serial = pipeline.run([rect_shape, l_shape], workers=1)
        parallel = pipeline.run([rect_shape, l_shape], workers=2)
        assert [r.shot_count for r in serial.results] == [
            r.shot_count for r in parallel.results
        ]
        assert [r.shape_name for r in parallel.results] == ["rect", "L"]

    def test_parallel_single_shape_falls_back(self, rect_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape], workers=4)
        assert len(report.results) == 1

    def test_parallel_writes_solutions(self, rect_shape, l_shape, spec, tmp_path):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        pipeline.run([rect_shape, l_shape], output_dir=tmp_path, workers=2)
        assert (tmp_path / "rect.solution.json").exists()
        assert (tmp_path / "L.solution.json").exists()


class TestParallelTelemetry:
    def _run(self, shapes, spec, workers):
        recorder = TelemetryRecorder()
        with recording(recorder):
            report = MdpPipeline(PartitionFracturer(), spec).run(
                shapes, workers=workers
            )
        return report, recorder.export()

    def test_workers2_identical_solutions_and_merged_telemetry(
        self, rect_shape, l_shape, spec
    ):
        shapes = [rect_shape, l_shape]
        serial_report, serial = self._run(shapes, spec, workers=1)
        parallel_report, parallel = self._run(shapes, spec, workers=2)

        # Identical solutions, shot for shot.
        assert [
            [s.as_tuple() for s in r.shots] for r in serial_report.results
        ] == [[s.as_tuple() for s in r.shots] for r in parallel_report.results]

        # Workload counters merge to the same totals across processes.
        assert parallel["counters"]["fracture.shapes"] == 2
        assert (
            parallel["counters"]["fracture.shapes"]
            == serial["counters"]["fracture.shapes"]
        )
        assert (
            parallel["counters"].get("intensity.patch_evals")
            == serial["counters"].get("intensity.patch_evals")
        )
        hist_p = parallel["histograms"]["fracture.shots"]
        hist_s = serial["histograms"]["fracture.shots"]
        assert hist_p["count"] == hist_s["count"] == 2
        assert hist_p["sum"] == hist_s["sum"]

    def test_worker_span_trees_grafted_per_shape(
        self, rect_shape, l_shape, spec
    ):
        _, payload = self._run([rect_shape, l_shape], spec, workers=2)
        batch = payload["spans"]["children"][0]
        assert batch["name"] == "mdp.batch"
        worker_nodes = [
            c for c in batch.get("children", ())
            if c["name"].startswith("worker:")
        ]
        assert {c["name"] for c in worker_nodes} == {
            "worker:rect", "worker:L",
        }
        for node in worker_nodes:
            assert node["children"][0]["name"] == "fracture"
            assert node["wall_s"] > 0.0

    def test_parallel_off_means_no_worker_nodes(self, rect_shape, l_shape, spec):
        _, payload = self._run([rect_shape, l_shape], spec, workers=1)
        batch = payload["spans"]["children"][0]
        names = [c["name"] for c in batch.get("children", ())]
        assert names == ["mdp.shape", "mdp.shape"]


class TestBatchJournal:
    def test_append_load_round_trip(self, tmp_path):
        from repro.mask.mdp import BatchJournal

        journal = BatchJournal(tmp_path / "batch.index.jsonl")
        journal.append("fp-1", "rect", {"shots": [], "shot_count": 0})
        journal.append("fp-2", "L", {"shots": [], "shot_count": 2})

        reloaded = BatchJournal(tmp_path / "batch.index.jsonl")
        assert reloaded.load() == 2
        assert reloaded.get("fp-2") == {"shots": [], "shot_count": 2}
        assert reloaded.get("fp-3") is None

    def test_missing_file_loads_empty(self, tmp_path):
        from repro.mask.mdp import BatchJournal

        assert BatchJournal(tmp_path / "nope.jsonl").load() == 0

    def test_torn_trailing_line_tolerated(self, tmp_path):
        from repro.mask.mdp import BatchJournal

        path = tmp_path / "batch.index.jsonl"
        journal = BatchJournal(path)
        journal.append("fp-1", "rect", {"shots": []})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "fingerprint": "fp-2", "payl')  # crash mid-append
        reloaded = BatchJournal(path)
        assert reloaded.load() == 1
        assert reloaded.get("fp-1") is not None

    def test_foreign_records_ignored(self, tmp_path):
        from repro.mask.mdp import BatchJournal

        path = tmp_path / "batch.index.jsonl"
        path.write_text('{"v": 2, "fingerprint": "x", "payload": {}}\n[1,2]\n')
        assert BatchJournal(path).load() == 0


class TestMdpResume:
    def test_resume_replays_bit_identically(self, rect_shape, l_shape, spec, tmp_path):
        journal = tmp_path / "batch.index.jsonl"
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        first = pipeline.run([rect_shape, l_shape], journal=journal)

        resumed = pipeline.run(
            [rect_shape, l_shape], journal=journal, resume=True
        )
        assert [r.shots for r in resumed.results] == \
            [r.shots for r in first.results]
        assert all(r.extra.get("resumed") for r in resumed.results)
        assert [r.report.total_failing for r in resumed.results] == \
            [r.report.total_failing for r in first.results]

    def test_changed_spec_invalidates_journal(self, rect_shape, spec, tmp_path):
        from dataclasses import replace

        journal = tmp_path / "batch.index.jsonl"
        MdpPipeline(PartitionFracturer(), spec).run([rect_shape], journal=journal)

        other_spec = replace(spec, lmin=spec.lmin + 1.0)
        report = MdpPipeline(PartitionFracturer(), other_spec).run(
            [rect_shape], journal=journal, resume=True
        )
        assert not report.results[0].extra.get("resumed")

    def test_journal_without_resume_never_replays(self, rect_shape, spec, tmp_path):
        journal = tmp_path / "batch.index.jsonl"
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        pipeline.run([rect_shape], journal=journal)
        report = pipeline.run([rect_shape], journal=journal)
        assert not report.results[0].extra.get("resumed")

    def test_duplicate_shapes_journal_once(self, rect_shape, spec, tmp_path):
        journal = tmp_path / "batch.index.jsonl"
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        pipeline.run([rect_shape, rect_shape], journal=journal)
        lines = [
            line for line in
            (tmp_path / "batch.index.jsonl").read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == 1


class TestMdpFractureCache:
    def test_within_batch_duplicates_hit(self, rect_shape, spec):
        from repro.fracture.cache import FractureCache

        fracturer = PartitionFracturer()
        fracturer.cache = FractureCache()
        pipeline = MdpPipeline(fracturer, spec)
        report = pipeline.run([rect_shape, rect_shape])
        hits = [r for r in report.results if r.extra.get("cache_hit")]
        assert len(hits) == 1
        assert report.results[0].shots == report.results[1].shots

    def test_parallel_run_detaches_cache_and_hits_in_parent(
        self, rect_shape, l_shape, spec
    ):
        from repro.fracture.cache import FractureCache

        fracturer = PartitionFracturer()
        cache = FractureCache()
        fracturer.cache = cache
        pipeline = MdpPipeline(fracturer, spec)
        first = pipeline.run([rect_shape, l_shape], workers=2)
        assert fracturer.cache is cache  # restored after the pool
        second = pipeline.run([rect_shape, l_shape], workers=2)
        assert all(r.extra.get("cache_hit") for r in second.results)
        assert [r.shots for r in second.results] == \
            [r.shots for r in first.results]
