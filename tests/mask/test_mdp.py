"""Unit tests for the multi-shape MDP pipeline."""

import json

from repro.baselines import PartitionFracturer
from repro.mask.mdp import MdpPipeline, MdpReport


class TestMdpPipeline:
    def test_batch_run(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape, l_shape])
        assert len(report.results) == 2
        assert report.total_shots >= 3  # 1 for rect, 2 for L
        assert report.shots_per_shape() == report.total_shots / 2

    def test_writes_solutions(self, rect_shape, spec, tmp_path):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        pipeline.run([rect_shape], output_dir=tmp_path)
        path = tmp_path / "rect.solution.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["metadata"]["method"] == "PARTITION"

    def test_projected_saving(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        base = pipeline.run([rect_shape, l_shape])
        # Fake an improved flow with 10% fewer shots.
        improved = MdpReport(results=base.results[:1])
        saving = pipeline.projected_saving(base, improved)
        assert 0.0 < saving["shot_reduction"] <= 1.0
        import pytest

        assert saving["mask_cost_saving_fraction"] == pytest.approx(
            0.2 * saving["shot_reduction"]
        )
        assert saving["mask_set_saving_usd"] > 0.0

    def test_projected_saving_empty_baseline(self, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        import pytest

        with pytest.raises(ValueError):
            pipeline.projected_saving(MdpReport(), MdpReport())

    def test_summary_mentions_totals(self, rect_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape])
        assert "total:" in report.summary()


class TestParallelMdp:
    def test_parallel_matches_serial(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        serial = pipeline.run([rect_shape, l_shape], workers=1)
        parallel = pipeline.run([rect_shape, l_shape], workers=2)
        assert [r.shot_count for r in serial.results] == [
            r.shot_count for r in parallel.results
        ]
        assert [r.shape_name for r in parallel.results] == ["rect", "L"]

    def test_parallel_single_shape_falls_back(self, rect_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape], workers=4)
        assert len(report.results) == 1

    def test_parallel_writes_solutions(self, rect_shape, l_shape, spec, tmp_path):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        pipeline.run([rect_shape, l_shape], output_dir=tmp_path, workers=2)
        assert (tmp_path / "rect.solution.json").exists()
        assert (tmp_path / "L.solution.json").exists()
