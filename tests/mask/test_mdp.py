"""Unit tests for the multi-shape MDP pipeline."""

import json

from repro.baselines import PartitionFracturer
from repro.mask.mdp import MdpPipeline, MdpReport
from repro.obs import TelemetryRecorder, recording


class TestMdpPipeline:
    def test_batch_run(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape, l_shape])
        assert len(report.results) == 2
        assert report.total_shots >= 3  # 1 for rect, 2 for L
        assert report.shots_per_shape() == report.total_shots / 2

    def test_writes_solutions(self, rect_shape, spec, tmp_path):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        pipeline.run([rect_shape], output_dir=tmp_path)
        path = tmp_path / "rect.solution.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["metadata"]["method"] == "PARTITION"

    def test_projected_saving(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        base = pipeline.run([rect_shape, l_shape])
        # Fake an improved flow with 10% fewer shots.
        improved = MdpReport(results=base.results[:1])
        saving = pipeline.projected_saving(base, improved)
        assert 0.0 < saving["shot_reduction"] <= 1.0
        import pytest

        assert saving["mask_cost_saving_fraction"] == pytest.approx(
            0.2 * saving["shot_reduction"]
        )
        assert saving["mask_set_saving_usd"] > 0.0

    def test_projected_saving_empty_baseline(self, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        import pytest

        with pytest.raises(ValueError):
            pipeline.projected_saving(MdpReport(), MdpReport())

    def test_summary_mentions_totals(self, rect_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape])
        assert "total:" in report.summary()


class TestParallelMdp:
    def test_parallel_matches_serial(self, rect_shape, l_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        serial = pipeline.run([rect_shape, l_shape], workers=1)
        parallel = pipeline.run([rect_shape, l_shape], workers=2)
        assert [r.shot_count for r in serial.results] == [
            r.shot_count for r in parallel.results
        ]
        assert [r.shape_name for r in parallel.results] == ["rect", "L"]

    def test_parallel_single_shape_falls_back(self, rect_shape, spec):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        report = pipeline.run([rect_shape], workers=4)
        assert len(report.results) == 1

    def test_parallel_writes_solutions(self, rect_shape, l_shape, spec, tmp_path):
        pipeline = MdpPipeline(PartitionFracturer(), spec)
        pipeline.run([rect_shape, l_shape], output_dir=tmp_path, workers=2)
        assert (tmp_path / "rect.solution.json").exists()
        assert (tmp_path / "L.solution.json").exists()


class TestParallelTelemetry:
    def _run(self, shapes, spec, workers):
        recorder = TelemetryRecorder()
        with recording(recorder):
            report = MdpPipeline(PartitionFracturer(), spec).run(
                shapes, workers=workers
            )
        return report, recorder.export()

    def test_workers2_identical_solutions_and_merged_telemetry(
        self, rect_shape, l_shape, spec
    ):
        shapes = [rect_shape, l_shape]
        serial_report, serial = self._run(shapes, spec, workers=1)
        parallel_report, parallel = self._run(shapes, spec, workers=2)

        # Identical solutions, shot for shot.
        assert [
            [s.as_tuple() for s in r.shots] for r in serial_report.results
        ] == [[s.as_tuple() for s in r.shots] for r in parallel_report.results]

        # Workload counters merge to the same totals across processes.
        assert parallel["counters"]["fracture.shapes"] == 2
        assert (
            parallel["counters"]["fracture.shapes"]
            == serial["counters"]["fracture.shapes"]
        )
        assert (
            parallel["counters"].get("intensity.patch_evals")
            == serial["counters"].get("intensity.patch_evals")
        )
        hist_p = parallel["histograms"]["fracture.shots"]
        hist_s = serial["histograms"]["fracture.shots"]
        assert hist_p["count"] == hist_s["count"] == 2
        assert hist_p["sum"] == hist_s["sum"]

    def test_worker_span_trees_grafted_per_shape(
        self, rect_shape, l_shape, spec
    ):
        _, payload = self._run([rect_shape, l_shape], spec, workers=2)
        batch = payload["spans"]["children"][0]
        assert batch["name"] == "mdp.batch"
        worker_nodes = [
            c for c in batch.get("children", ())
            if c["name"].startswith("worker:")
        ]
        assert {c["name"] for c in worker_nodes} == {
            "worker:rect", "worker:L",
        }
        for node in worker_nodes:
            assert node["children"][0]["name"] == "fracture"
            assert node["wall_s"] > 0.0

    def test_parallel_off_means_no_worker_nodes(self, rect_shape, l_shape, spec):
        _, payload = self._run([rect_shape, l_shape], spec, workers=1)
        batch = payload["spans"]["children"][0]
        names = [c["name"] for c in batch.get("children", ())]
        assert names == ["mdp.shape", "mdp.shape"]
