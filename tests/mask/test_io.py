"""Unit tests for clip/solution serialization."""

import pytest

from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.io import (
    load_clips,
    load_solution,
    polygon_from_dict,
    polygon_to_dict,
    rect_from_list,
    rect_to_list,
    save_clips,
    save_solution,
    spec_from_dict,
    spec_to_dict,
)


class TestRoundtrips:
    def test_polygon_roundtrip(self):
        poly = Polygon([(0, 0), (10.5, 0), (10.5, 7.25), (0, 7)])
        assert polygon_from_dict(polygon_to_dict(poly)) == poly

    def test_rect_roundtrip(self):
        rect = Rect(1.5, -2.0, 7.0, 3.25)
        assert rect_from_list(rect_to_list(rect)) == rect

    def test_rect_wrong_length(self):
        with pytest.raises(ValueError):
            rect_from_list([1, 2, 3])

    def test_spec_roundtrip(self):
        spec = FractureSpec(sigma=5.0, gamma=1.5, pitch=0.5, rho=0.4, lmin=8.0)
        assert spec_from_dict(spec_to_dict(spec)) == spec


class TestClipFiles:
    def test_save_load(self, tmp_path):
        clips = {
            "a": Polygon([(0, 0), (10, 0), (10, 10), (0, 10)]),
            "b": Polygon([(0, 0), (20, 0), (20, 5), (0, 5)]),
        }
        path = tmp_path / "clips.json"
        save_clips(clips, path)
        loaded = load_clips(path)
        assert loaded == clips

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_clips(path)


class TestSolutionFiles:
    def test_save_load_with_metadata(self, tmp_path, spec):
        shots = [Rect(0, 0, 20, 15), Rect(10, 5, 40, 18)]
        path = tmp_path / "sol.json"
        save_solution(shots, spec, path, clip_name="clip-7", metadata={"shots": 2})
        loaded_shots, loaded_spec, metadata = load_solution(path)
        assert loaded_shots == shots
        assert loaded_spec == spec
        assert metadata == {"shots": 2}

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "repro-clips", "clips": {}}')
        with pytest.raises(ValueError):
            load_solution(path)
