"""Unit tests for the GDSII reader/writer."""

import struct

import pytest

from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.gds import (
    GdsCell,
    GdsError,
    SHOT_LAYER,
    TARGET_LAYER,
    _gds_real8,
    read_gds,
    write_gds,
    write_solution_gds,
)


@pytest.fixture()
def square() -> Polygon:
    return Polygon([(0, 0), (100, 0), (100, 60), (0, 60)])


class TestReal8:
    def test_zero(self):
        assert _gds_real8(0.0) == b"\x00" * 8

    def test_known_value_1e_minus_9(self):
        """1e-9 (the metre db unit) must match the canonical encoding."""
        encoded = _gds_real8(1e-9)
        # Decode: sign/exponent byte + 7-byte mantissa.
        first = encoded[0]
        mantissa = int.from_bytes(encoded[1:], "big") / float(1 << 56)
        value = mantissa * 16.0 ** (first - 64)
        assert value == pytest.approx(1e-9, rel=1e-12)

    def test_sign(self):
        assert _gds_real8(-1.0)[0] & 0x80

    @pytest.mark.parametrize("value", [1.0, 0.001, 123456.789, 2.5e-10])
    def test_roundtrip_decode(self, value):
        encoded = _gds_real8(value)
        first = encoded[0]
        mantissa = int.from_bytes(encoded[1:], "big") / float(1 << 56)
        decoded = mantissa * 16.0 ** ((first & 0x7F) - 64)
        assert decoded == pytest.approx(value, rel=1e-12)


class TestRoundtrip:
    def test_single_polygon(self, square, tmp_path):
        cell = GdsCell(name="TOP", polygons=[(TARGET_LAYER, square)])
        path = tmp_path / "clip.gds"
        write_gds(cell, path)
        loaded = read_gds(path)
        assert loaded.name == "TOP"
        assert loaded.targets == [square]

    def test_solution_convention(self, square, tmp_path):
        shots = [Rect(0, 0, 50, 60), Rect(45, 0, 100, 60)]
        path = tmp_path / "sol.gds"
        write_solution_gds(square, shots, path, cell_name="CLIP1")
        loaded = read_gds(path)
        assert loaded.name == "CLIP1"
        assert loaded.targets == [square]
        assert loaded.shots == shots

    def test_traced_ilt_polygon_roundtrip(self, blob_shape, tmp_path):
        """A real many-vertex traced contour survives the roundtrip."""
        path = tmp_path / "ilt.gds"
        write_solution_gds(blob_shape.polygon, [], path)
        loaded = read_gds(path)
        assert loaded.targets[0] == blob_shape.polygon

    def test_multiple_layers_kept_apart(self, square, tmp_path):
        inner = Polygon([(10, 10), (20, 10), (20, 20), (10, 20)])
        cell = GdsCell(
            name="X",
            polygons=[(TARGET_LAYER, square), (SHOT_LAYER, inner), (7, inner)],
        )
        path = tmp_path / "multi.gds"
        write_gds(cell, path)
        loaded = read_gds(path)
        assert len(loaded.targets) == 1
        assert len(loaded.shots) == 1
        assert len(loaded.on_layer(7)) == 1


class TestErrors:
    def test_unsupported_record_rejected(self, tmp_path):
        path = tmp_path / "bad.gds"
        # A PATH element (0x0900) is outside the supported subset.
        path.write_bytes(struct.pack(">HH", 4, 0x0900))
        with pytest.raises(GdsError):
            read_gds(path)

    def test_truncated_file(self, tmp_path, square):
        path = tmp_path / "trunc.gds"
        write_gds(GdsCell("T", [(1, square)]), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])
        with pytest.raises(GdsError):
            read_gds(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.gds"
        path.write_bytes(b"")
        with pytest.raises(GdsError):
            read_gds(path)

    def test_boundary_without_layer(self, tmp_path):
        from repro.mask.gds import _BOUNDARY, _ENDEL, _XY, _record, _xy_payload

        payload = (
            _record(0x0502, struct.pack(">12h", *([0] * 12)))  # BGNSTR
            + _record(0x0606, b"AB")  # STRNAME
            + _record(_BOUNDARY)
            + _record(_XY, _xy_payload([(0, 0), (1, 0), (1, 1), (0, 0)]))
            + _record(_ENDEL)
        )
        path = tmp_path / "nolayer.gds"
        path.write_bytes(payload)
        with pytest.raises(GdsError):
            read_gds(path)
