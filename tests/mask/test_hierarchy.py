"""Hierarchy-aware fracturing: bit-identity with the flattened path,
template sharing, and cache accounting."""

import pytest

from repro.fracture.cache import FractureCache
from repro.geometry.polygon import Polygon
from repro.mask.constraints import FractureSpec
from repro.mask.gds import GdsCell, GdsRef, Layout, TARGET_LAYER
from repro.mask.hierarchy import fracture_layout, placed_polygons
from repro.methods import make_fracturer

SPEC = FractureSpec()


@pytest.fixture()
def layout() -> Layout:
    unit = GdsCell("UNIT", polygons=[
        (TARGET_LAYER, Polygon([(0, 0), (120, 0), (120, 40), (0, 40)])),
        (TARGET_LAYER, Polygon([(0, 60), (40, 60), (40, 120), (0, 120)])),
    ])
    top = GdsCell("TOP", polygons=[
        (TARGET_LAYER, Polygon([(0, 500), (80, 500), (80, 580), (0, 580)])),
    ], refs=[
        GdsRef.array("UNIT", origin=(0.0, 0.0), cols=4, rows=2,
                     col_pitch=200.0, row_pitch=200.0),
        GdsRef("UNIT", origin=(1000.0, 0.0), rotation=90),
        GdsRef("UNIT", origin=(1000.0, 400.0), mirror_x=True),
    ])
    return Layout(cells={"UNIT": unit, "TOP": top}, top="TOP")


class TestPlacedPolygons:
    def test_matches_flatten_order(self, layout):
        placed = placed_polygons(layout)
        flat = layout.flatten().targets
        assert [poly for _, poly in placed] == flat

    def test_names_are_unique(self, layout):
        names = [name for name, _ in placed_polygons(layout)]
        assert len(names) == len(set(names))


class TestBitIdentity:
    def test_hierarchy_equals_flatten(self, layout):
        frac = make_fracturer("partition")
        hier = fracture_layout(layout, frac, SPEC, hierarchy=True)
        flat = fracture_layout(layout, frac, SPEC, hierarchy=False)
        assert hier.shots == flat.shots  # bit-identical, not approx
        assert hier.shot_count == flat.shot_count
        assert [r.feasible for r in hier.results] == \
            [r.feasible for r in flat.results]
        assert [r.report.total_failing for r in hier.results] == \
            [r.report.total_failing for r in flat.results]

    def test_results_in_placement_order(self, layout):
        report = fracture_layout(layout, make_fracturer("partition"), SPEC)
        names = [name for name, _ in placed_polygons(layout)]
        assert [r.shape_name for r in report.results] == names


class TestTemplateSharing:
    def test_unique_fractures_bounded_by_distinct_geometry(self, layout):
        report = fracture_layout(layout, make_fracturer("partition"), SPEC)
        stats = report.stats
        # 21 placed polygons; distinct canonical geometries: the two
        # UNIT polygons, their 90°-rotated images, and the TOP square
        # (the mirrored placement canonicalizes onto the plain one).
        assert stats["polygon_instances"] == 21
        assert stats["unique_geometries"] == 5
        assert stats["template_fractures"] == stats["unique_geometries"]
        assert stats["cache_hits"] == 16
        assert stats["hit_rate"] == pytest.approx(16 / 21)
        assert stats["mode"] == "hierarchy"

    def test_flatten_mode_never_caches(self, layout):
        report = fracture_layout(
            layout, make_fracturer("partition"), SPEC, hierarchy=False
        )
        assert report.stats["cache_hits"] == 0
        assert report.stats["template_fractures"] == 21
        assert report.stats["mode"] == "flatten"
        assert "cache" not in report.stats

    def test_cache_hits_marked_in_extra(self, layout):
        report = fracture_layout(layout, make_fracturer("partition"), SPEC)
        hits = [r for r in report.results if r.extra.get("cache_hit")]
        assert len(hits) == report.stats["cache_hits"]

    def test_shared_cache_warm_across_runs(self, layout, tmp_path):
        cache = FractureCache(persist_dir=tmp_path / "store")
        frac = make_fracturer("partition")
        cold = fracture_layout(layout, frac, SPEC, cache=cache)
        assert cold.stats["template_fractures"] == 5

        warm_cache = FractureCache(persist_dir=tmp_path / "store")
        warm = fracture_layout(layout, frac, SPEC, cache=warm_cache)
        assert warm.stats["template_fractures"] == 0
        assert warm.stats["hit_rate"] == 1.0
        assert warm.shots == cold.shots

    def test_fracturer_hook_detached_and_restored(self, layout):
        frac = make_fracturer("partition")
        sentinel = FractureCache()
        frac.cache = sentinel
        fracture_layout(layout, frac, SPEC)
        assert frac.cache is sentinel
        # The hook was not consulted (the layout loop drives its own).
        assert sentinel.stats()["hits"] == 0 and sentinel.stats()["misses"] == 0
