"""Hierarchy-aware GDSII: SREF/AREF round-trips, multi-structure files,
and rejection of the records we deliberately do not support."""

import struct

import pytest

from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform
from repro.mask.gds import (
    GdsCell,
    GdsError,
    GdsRef,
    Layout,
    TARGET_LAYER,
    _gds_real8,
    _parse_real8,
    read_gds,
    read_layout,
    write_gds,
    write_layout,
)


def unit_cell(name="UNIT"):
    return GdsCell(name=name, polygons=[
        (TARGET_LAYER, Polygon([(0, 0), (120, 0), (120, 40), (0, 40)])),
        (TARGET_LAYER, Polygon([(0, 60), (40, 60), (40, 120), (0, 120)])),
    ])


def demo_layout():
    top = GdsCell("TOP", refs=[
        GdsRef.array("UNIT", origin=(0.0, 0.0), cols=3, rows=2,
                     col_pitch=200.0, row_pitch=300.0),
        GdsRef("UNIT", origin=(900.0, 0.0), rotation=90),
        GdsRef("UNIT", origin=(900.0, 500.0), mirror_x=True),
    ])
    return Layout(cells={"UNIT": unit_cell(), "TOP": top}, top="TOP")


class TestParseReal8:
    @pytest.mark.parametrize(
        "value", [0.0, 1.0, -1.0, 90.0, 270.0, 1e-9, 123456.789, -2.5e-10]
    )
    def test_inverse_of_encoder(self, value):
        assert _parse_real8(_gds_real8(value)) == pytest.approx(
            value, rel=1e-12, abs=1e-300
        )

    def test_wrong_length_rejected(self):
        with pytest.raises(GdsError):
            _parse_real8(b"\x00" * 7)


class TestMultipleStructures:
    def test_multi_structure_no_refs_loads_first_as_top(self, tmp_path):
        """Regression: multi-structure files used to raise GdsError."""
        layout = Layout(
            cells={"A": unit_cell("A"), "B": unit_cell("B")}, top="A"
        )
        path = tmp_path / "multi.gds"
        write_layout(layout, path)
        loaded = read_layout(path)
        assert set(loaded.cells) == {"A", "B"}
        assert loaded.top == "A"
        # The historical flat reader flattens to the top structure.
        assert read_gds(path).targets == unit_cell().targets

    def test_duplicate_structure_name_rejected(self, tmp_path):
        path = tmp_path / "dup.gds"
        write_layout(
            Layout(cells={"A": unit_cell("A")}, top="A"), path
        )
        data = path.read_bytes()
        # Replay the structure block (BGNSTR..ENDSTR) a second time.
        endlib = data[-4:]
        bgnstr = data.index(struct.pack(">HH", 28, 0x0502))
        path.write_bytes(data[:-4] + data[bgnstr:-4] + endlib)
        with pytest.raises(GdsError, match="duplicate structure"):
            read_layout(path)


class TestRefRoundtrip:
    def test_sref_aref_round_trip(self, tmp_path):
        layout = demo_layout()
        path = tmp_path / "hier.gds"
        write_layout(layout, path)
        loaded = read_layout(path)
        assert loaded.top == "TOP"
        assert loaded.cells["UNIT"].targets == unit_cell().targets
        refs = loaded.cells["TOP"].refs
        assert [r.cell for r in refs] == ["UNIT"] * 3
        aref, rot, mirror = refs
        assert (aref.cols, aref.rows) == (3, 2)
        assert aref.col_vec == (200.0, 0.0)
        assert aref.row_vec == (0.0, 300.0)
        assert rot.rotation == 90 and not rot.mirror_x
        assert mirror.mirror_x and mirror.rotation == 0
        assert loaded.instance_count() == layout.instance_count()

    def test_flatten_matches_in_memory_layout(self, tmp_path):
        layout = demo_layout()
        path = tmp_path / "hier.gds"
        write_layout(layout, path)
        assert read_layout(path).flatten().targets == layout.flatten().targets

    def test_read_gds_flattens_hierarchy(self, tmp_path):
        layout = demo_layout()
        path = tmp_path / "hier.gds"
        write_layout(layout, path)
        flat = read_gds(path)
        # 8 placements x 2 target polygons each.
        assert len(flat.targets) == 16

    def test_aref_transforms_row_major(self):
        ref = GdsRef.array("U", origin=(10.0, 20.0), cols=2, rows=2,
                           col_pitch=100.0, row_pitch=50.0)
        labels = [label for label, _ in ref.transforms()]
        assert labels == ["[0,0]", "[0,1]", "[1,0]", "[1,1]"]
        offsets = [(t.dx, t.dy) for _, t in ref.transforms()]
        assert offsets == [
            (10.0, 20.0), (110.0, 20.0), (10.0, 70.0), (110.0, 70.0)
        ]

    def test_placement_paths_label_array_elements(self):
        layout = demo_layout()
        paths = [path for path, _, _ in layout.placements()]
        assert paths[0] == "TOP"
        assert "TOP/UNIT@0[0,0]" in paths
        assert "TOP/UNIT@0[1,2]" in paths
        assert "TOP/UNIT@1" in paths  # plain SREF: no element label

    def test_nested_references_compose(self, tmp_path):
        mid = GdsCell("MID", refs=[
            GdsRef("UNIT", origin=(50.0, 0.0), rotation=180),
        ])
        top = GdsCell("TOP2", refs=[
            GdsRef("MID", origin=(1000.0, 0.0), rotation=90),
        ])
        layout = Layout(
            cells={"UNIT": unit_cell(), "MID": mid, "TOP2": top}, top="TOP2"
        )
        path = tmp_path / "nested.gds"
        write_layout(layout, path)
        loaded = read_layout(path)
        expected = Transform(rotation=90, dx=1000.0).compose(
            Transform(rotation=180, dx=50.0)
        )
        transforms = {
            name: t for _, name, t in loaded.placements()
        }
        assert transforms["UNIT"] == expected
        assert loaded.flatten().targets == layout.flatten().targets


class TestRejection:
    def test_unknown_reference_rejected(self):
        layout = Layout(
            cells={"TOP": GdsCell("TOP", refs=[GdsRef("GHOST")])}, top="TOP"
        )
        with pytest.raises(GdsError, match="unknown structure"):
            layout.placements()

    def test_circular_reference_rejected(self):
        a = GdsCell("A", refs=[GdsRef("B")])
        b = GdsCell("B", refs=[GdsRef("A")])
        with pytest.raises(GdsError, match="circular"):
            Layout(cells={"A": a, "B": b, "TOP": GdsCell(
                "TOP", refs=[GdsRef("A")]
            )}, top="TOP").placements()

    def test_non_rectilinear_angle_rejected(self, tmp_path):
        path = tmp_path / "angle.gds"
        write_layout(demo_layout(), path)
        data = path.read_bytes()
        needle = _gds_real8(90.0)
        assert needle in data
        path.write_bytes(data.replace(needle, _gds_real8(45.0)))
        with pytest.raises(GdsError, match="45"):
            read_layout(path)

    def test_magnified_reference_rejected(self, tmp_path):
        path = tmp_path / "mag.gds"
        write_layout(demo_layout(), path)
        data = path.read_bytes()
        # Splice a MAG record after the SREF's SNAME record.
        sname = struct.pack(">HH", 8, 0x1206) + b"UNIT"
        mag = struct.pack(">HH", 12, 0x1B05) + _gds_real8(2.0)
        path.write_bytes(data.replace(sname, sname + mag, 1))
        with pytest.raises(GdsError, match="magnification"):
            read_layout(path)

    def test_absolute_strans_bits_rejected(self, tmp_path):
        path = tmp_path / "strans.gds"
        write_layout(demo_layout(), path)
        data = path.read_bytes()
        plain = struct.pack(">HH", 6, 0x1A01) + struct.pack(">H", 0x8000)
        weird = struct.pack(">HH", 6, 0x1A01) + struct.pack(">H", 0x8002)
        assert plain in data
        path.write_bytes(data.replace(plain, weird))
        with pytest.raises(GdsError, match="STRANS"):
            read_layout(path)

    def test_invalid_rotation_in_constructor(self):
        with pytest.raises(GdsError):
            GdsRef("U", rotation=45)

    def test_zero_array_dims_rejected(self):
        with pytest.raises(GdsError):
            GdsRef("U", cols=0, rows=2)
