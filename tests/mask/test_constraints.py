"""Unit tests for the fracture spec and Eq. 4 feasibility checking."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.mask.constraints import (
    FailureReport,
    FractureSpec,
    check_solution,
    failure_report,
)
from repro.mask.pixels import PixelSets


class TestFractureSpec:
    def test_paper_defaults(self, spec):
        assert spec.sigma == 6.25
        assert spec.gamma == 2.0
        assert spec.pitch == 1.0
        assert spec.rho == 0.5
        assert spec.lmin == 10.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FractureSpec(sigma=-1.0)
        with pytest.raises(ValueError):
            FractureSpec(rho=0.0)
        with pytest.raises(ValueError):
            FractureSpec(rho=1.0)

    def test_lth_derived(self, spec):
        assert 8.0 < spec.lth < 22.0

    def test_grid_margin_covers_blur_and_overhang(self, spec):
        assert spec.grid_margin >= 4 * spec.sigma


class TestFailureReport:
    def _pixels(self):
        on = np.zeros((4, 4), dtype=bool)
        off = np.zeros((4, 4), dtype=bool)
        on[1:3, 1:3] = True
        off[0, :] = True
        band = ~(on | off)
        return PixelSets(on=on, off=off, band=band)

    def test_all_satisfied(self):
        intensity = np.zeros((4, 4))
        intensity[1:3, 1:3] = 0.9
        report = failure_report(intensity, self._pixels(), rho=0.5)
        assert report.feasible
        assert report.cost == 0.0

    def test_underexposed_on_pixels(self):
        intensity = np.zeros((4, 4))
        intensity[1:3, 1:3] = 0.4
        report = failure_report(intensity, self._pixels(), rho=0.5)
        assert report.count_on == 4 and report.count_off == 0
        assert np.isclose(report.cost, 4 * 0.1)

    def test_overexposed_off_pixels(self):
        intensity = np.zeros((4, 4))
        intensity[1:3, 1:3] = 0.9
        intensity[0, 0] = 0.6
        report = failure_report(intensity, self._pixels(), rho=0.5)
        assert report.count_off == 1
        assert np.isclose(report.cost, 0.1)

    def test_band_pixels_are_dont_care(self):
        intensity = np.zeros((4, 4))
        intensity[1:3, 1:3] = 0.9
        intensity[3, 3] = 0.7  # band pixel overexposed — must not count
        report = failure_report(intensity, self._pixels(), rho=0.5)
        assert report.feasible

    def test_exact_threshold_boundary(self):
        """I = ρ exactly: P_on passes (≥), P_off fails (<  is required)."""
        intensity = np.full((4, 4), 0.5)
        report = failure_report(intensity, self._pixels(), rho=0.5)
        assert report.count_on == 0
        assert report.count_off == 4

    def test_total_and_feasible_properties(self):
        report = FailureReport(
            fail_on=np.ones((2, 2), dtype=bool),
            fail_off=np.zeros((2, 2), dtype=bool),
            cost=1.0,
        )
        assert report.total_failing == 4
        assert not report.feasible


class TestCheckSolution:
    def test_single_covering_shot_feasible(self, rect_shape, spec):
        shots = [Rect(-1, -1, 61, 41)]
        report = check_solution(shots, rect_shape, spec)
        assert report.feasible

    def test_no_shots_all_on_fail(self, rect_shape, spec):
        report = check_solution([], rect_shape, spec)
        pixels = rect_shape.pixels(spec.gamma)
        assert report.count_on == pixels.count_on

    def test_undersize_shot_flagged(self, rect_shape, spec):
        shots = [Rect(-1, -1, 61, 41), Rect(0, 0, 5, 5)]
        report = check_solution(shots, rect_shape, spec)
        assert report.undersize_shots == 1
        assert not report.feasible

    def test_overexposure_flagged(self, rect_shape, spec):
        report = check_solution([Rect(-40, -40, 100, 80)], rect_shape, spec)
        assert report.count_off > 0
