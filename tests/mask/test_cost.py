"""Unit tests for the mask cost model (paper §1 economics)."""

import pytest

from repro.mask.cost import MaskCostModel


class TestConstruction:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            MaskCostModel(write_cost_fraction=0.0)
        with pytest.raises(ValueError):
            MaskCostModel(write_cost_fraction=1.5)

    def test_invalid_mask_cost(self):
        with pytest.raises(ValueError):
            MaskCostModel(mask_set_cost_usd=-1.0)


class TestHeadlineArithmetic:
    def test_paper_claim_10pct_shots_is_2pct_cost(self):
        """§1: 'a reduction of even 10% in shot count would roughly
        translate to 2% improvement in mask cost'."""
        model = MaskCostModel()
        assert model.cost_saving_fraction(0.10) == pytest.approx(0.02)

    def test_23pct_reduction(self):
        """The paper's result (23% fewer shots than PROTO-EDA) ≈ 4.6%."""
        model = MaskCostModel()
        assert model.cost_saving_fraction(0.23) == pytest.approx(0.046)

    def test_relative_cost_bounds(self):
        model = MaskCostModel()
        assert model.relative_mask_cost(1.0) == 1.0
        assert model.relative_mask_cost(0.0) == pytest.approx(0.8)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            MaskCostModel().relative_mask_cost(-0.1)

    def test_mask_set_saving_dollars(self):
        model = MaskCostModel(mask_set_cost_usd=1_000_000.0)
        assert model.mask_set_saving_usd(0.10) == pytest.approx(20_000.0)


class TestWriteTimeBridge:
    def test_write_time_saving(self):
        model = MaskCostModel()
        saving = model.write_time_saving_hours(1_000_000, 900_000)
        assert saving > 0.0
        assert saving == pytest.approx(
            model.writer.write_time_hours(100_000)
        )
