"""Unit tests for MaskShape."""

import numpy as np
import pytest

from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid
from repro.mask.shape import MaskShape


class TestConstruction:
    def test_from_polygon_pads_grid(self, spec):
        poly = Polygon([(0, 0), (50, 0), (50, 30), (0, 30)])
        shape = MaskShape.from_polygon(poly, margin=20.0)
        extent = shape.grid.extent
        assert extent.xbl <= -20.0 and extent.xtr >= 70.0

    def test_from_mask_traces_polygon(self, small_grid):
        mask = np.zeros(small_grid.shape, dtype=bool)
        mask[5:25, 5:35] = True
        shape = MaskShape.from_mask(mask, small_grid, name="sq")
        assert shape.polygon.is_rectilinear()
        assert shape.polygon.area == 600.0

    def test_empty_mask_raises(self, small_grid):
        with pytest.raises(ValueError):
            MaskShape.from_mask(np.zeros(small_grid.shape, dtype=bool), small_grid)

    def test_shape_mismatch_raises(self, small_grid):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        with pytest.raises(ValueError):
            MaskShape(poly, small_grid, np.zeros((3, 3), dtype=bool))


class TestDerivedData:
    def test_area_matches_polygon(self, rect_shape):
        assert abs(rect_shape.area - 2400.0) < 150.0

    def test_sat_cached(self, rect_shape):
        assert rect_shape.sat is rect_shape.sat

    def test_pixels_cached_per_gamma(self, rect_shape):
        a = rect_shape.pixels(2.0)
        b = rect_shape.pixels(2.0)
        c = rect_shape.pixels(3.0)
        assert a is b and a is not c

    def test_pixel_partition(self, blob_shape):
        assert blob_shape.pixels(2.0).is_partition()

    def test_repr_mentions_name(self, rect_shape):
        assert "rect" in repr(rect_shape)

    def test_vertex_count(self, rect_shape):
        assert rect_shape.vertex_count == 4
