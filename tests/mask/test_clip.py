"""Unit tests for multi-polygon clips."""

import numpy as np
import pytest

from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid
from repro.mask.clip import MaskClip


@pytest.fixture()
def two_feature_mask():
    grid = PixelGrid(0.0, 0.0, 1.0, 120, 120)
    mask = np.zeros(grid.shape, dtype=bool)
    mask[20:60, 20:80] = True  # main feature
    mask[90:105, 30:95] = True  # assist bar
    return mask, grid


class TestFromMask:
    def test_splits_components(self, two_feature_mask):
        mask, grid = two_feature_mask
        clip = MaskClip.from_mask(mask, grid, name="clip")
        assert len(clip.shapes) == 2
        assert clip.total_area == float(mask.sum())

    def test_shape_names(self, two_feature_mask):
        mask, grid = two_feature_mask
        clip = MaskClip.from_mask(mask, grid, name="c7")
        assert [s.name for s in clip.shapes] == ["c7/1", "c7/2"]

    def test_subgrids_are_padded(self, two_feature_mask):
        mask, grid = two_feature_mask
        clip = MaskClip.from_mask(mask, grid, margin=15.0)
        main = clip.shapes[0]
        bbox = main.polygon.bounding_box()
        extent = main.grid.extent
        assert extent.xbl <= bbox.xbl - 14.0
        assert extent.xtr >= bbox.xtr + 14.0

    def test_subgrid_coordinates_preserved(self, two_feature_mask):
        """Shapes keep absolute mask-plane coordinates."""
        mask, grid = two_feature_mask
        clip = MaskClip.from_mask(mask, grid)
        main = clip.shapes[0]
        assert main.polygon.bounding_box().as_tuple() == (20.0, 20.0, 80.0, 60.0)

    def test_debris_dropped(self, two_feature_mask):
        mask, grid = two_feature_mask
        mask = mask.copy()
        mask[0, 0] = True  # 1-px speck
        clip = MaskClip.from_mask(mask, grid, min_area_px=16)
        assert len(clip.shapes) == 2

    def test_margin_clamped_at_window_edge(self):
        grid = PixelGrid(0.0, 0.0, 1.0, 40, 40)
        mask = np.zeros(grid.shape, dtype=bool)
        mask[0:15, 0:15] = True  # touches the window corner
        clip = MaskClip.from_mask(mask, grid, margin=30.0)
        assert len(clip.shapes) == 1


class TestFromPolygonsAndGds:
    def test_from_polygons(self):
        polys = [
            Polygon([(0, 0), (40, 0), (40, 30), (0, 30)]),
            Polygon([(100, 0), (140, 0), (140, 20), (100, 20)]),
        ]
        clip = MaskClip.from_polygons(polys, name="p")
        assert len(clip.shapes) == 2
        assert clip.rasterized_check()

    def test_from_gds_roundtrip(self, tmp_path):
        from repro.mask.gds import GdsCell, TARGET_LAYER, write_gds

        polys = [
            Polygon([(0, 0), (40, 0), (40, 30), (0, 30)]),
            Polygon([(100, 0), (140, 0), (140, 20), (100, 20)]),
        ]
        cell = GdsCell("CLIPX", [(TARGET_LAYER, p) for p in polys])
        path = tmp_path / "clip.gds"
        write_gds(cell, path)
        clip = MaskClip.from_gds(path)
        assert clip.name == "CLIPX"
        assert len(clip.shapes) == 2
        assert clip.shapes[0].polygon == polys[0]


class TestClipFracturing:
    def test_mdp_over_clip(self, spec):
        """End to end: split a clip, fracture every shape."""
        from repro.baselines import PartitionFracturer
        from repro.mask.mdp import MdpPipeline

        grid = PixelGrid(0.0, 0.0, 1.0, 120, 120)
        mask = np.zeros(grid.shape, dtype=bool)
        mask[20:60, 20:80] = True
        mask[90:105, 30:95] = True
        clip = MaskClip.from_mask(mask, grid, name="clip")
        report = MdpPipeline(PartitionFracturer(), spec).run(clip.shapes)
        assert len(report.results) == 2
        assert report.all_feasible
