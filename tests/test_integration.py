"""End-to-end integration tests across subsystems.

These exercise the flows a user of the library actually runs: generate a
workload, fracture it with several methods, verify feasibility with the
independent checker, compare methods, persist and reload solutions.
"""

import numpy as np
import pytest

from repro import (
    FractureSpec,
    MaskShape,
    ModelBasedFracturer,
    Polygon,
    RefineConfig,
    check_solution,
)
from repro.baselines import (
    GreedySetCoverFracturer,
    PartitionFracturer,
    ProtoEdaFracturer,
)
from repro.mask.io import load_solution, save_solution


class TestEndToEndSingleClip:
    def test_full_flow_on_known_optimal_clip(self, spec):
        """Generate an RGB clip, fracture it, land within 3x of optimal."""
        from repro.bench.shapes import rgb_suite

        ko = rgb_suite()[0]  # RGB-1, optimal 5
        result = ModelBasedFracturer().fracture(ko.shape, spec)
        assert result.feasible
        assert result.shot_count <= 3 * ko.optimal_shots

    def test_solution_roundtrip_stays_feasible(self, spec, tmp_path):
        polygon = Polygon([(0, 0), (70, 0), (70, 45), (0, 45)])
        shape = MaskShape.from_polygon(polygon, margin=spec.grid_margin, name="t")
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            shape, spec
        )
        path = tmp_path / "solution.json"
        save_solution(result.shots, spec, path, clip_name="t")
        shots, loaded_spec, _ = load_solution(path)
        report = check_solution(shots, shape, loaded_spec)
        assert report.total_failing == result.report.total_failing

    def test_methods_agree_on_feasibility_semantics(self, blob_shape, spec):
        """Every method's self-reported result matches the independent
        from-scratch checker."""
        for fracturer in (
            PartitionFracturer(),
            GreedySetCoverFracturer(),
            ProtoEdaFracturer(nmax=40),
        ):
            result = fracturer.fracture(blob_shape, spec)
            recheck = check_solution(result.shots, blob_shape, spec)
            assert recheck.total_failing == result.report.total_failing


class TestMethodOrdering:
    def test_model_based_beats_partition_on_curvy(self, blob_shape, spec):
        ours = ModelBasedFracturer().fracture(blob_shape, spec)
        partition = PartitionFracturer().fracture(blob_shape, spec)
        assert ours.feasible
        assert ours.shot_count < partition.shot_count

    def test_refinement_fixes_stage1_violations(self, blob_shape, spec):
        from repro.fracture.graph_color import approximate_fracture

        initial, _ = approximate_fracture(blob_shape, spec)
        initial_report = check_solution(initial, blob_shape, spec)
        final = ModelBasedFracturer().fracture(blob_shape, spec)
        assert final.report.total_failing <= initial_report.total_failing


class TestSpecVariations:
    @pytest.mark.parametrize("lmin", [8.0, 12.0])
    def test_lmin_respected(self, rect_shape, lmin):
        spec = FractureSpec(lmin=lmin)
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            rect_shape, spec
        )
        assert all(s.meets_min_size(lmin - 1e-9) for s in result.shots)

    def test_larger_gamma_is_easier(self, blob_shape):
        """A wider CD band never makes the instance harder to satisfy."""
        tight = FractureSpec(gamma=1.0)
        loose = FractureSpec(gamma=4.0)
        f = ModelBasedFracturer(config=RefineConfig.fast())
        result_tight = f.fracture(blob_shape, tight)
        result_loose = f.fracture(blob_shape, loose)
        assert (
            result_loose.report.total_failing
            <= result_tight.report.total_failing + 5
        )

    def test_coarser_pixels_run_faster_same_structure(self, spec):
        polygon = Polygon([(0, 0), (80, 0), (80, 50), (0, 50)])
        coarse_spec = FractureSpec(pitch=2.0)
        shape = MaskShape.from_polygon(
            polygon, pitch=2.0, margin=coarse_spec.grid_margin
        )
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            shape, coarse_spec
        )
        assert result.shot_count >= 1


class TestMdpEconomics:
    def test_shot_reduction_to_cost_story(self, blob_shape, spec):
        """The paper's economic chain: fewer shots → write time → cost."""
        from repro.mask.cost import MaskCostModel
        from repro.mask.mdp import MdpPipeline

        baseline = MdpPipeline(PartitionFracturer(), spec).run([blob_shape])
        improved = MdpPipeline(
            ModelBasedFracturer(config=RefineConfig.fast()), spec
        ).run([blob_shape])
        saving = MdpPipeline(ModelBasedFracturer(), spec).projected_saving(
            baseline, improved
        )
        assert saving["shot_reduction"] > 0.5  # partition explodes on curvy
        model = MaskCostModel()
        assert saving["mask_cost_saving_fraction"] == pytest.approx(
            model.cost_saving_fraction(saving["shot_reduction"])
        )
