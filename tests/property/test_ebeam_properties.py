"""Hypothesis property tests for the e-beam exposure model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebeam.intensity import point_intensity, shot_profile_1d
from repro.ebeam.intensity_map import IntensityMap
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect

SIGMA = 6.25

shot_coords = st.floats(min_value=0.0, max_value=80.0, allow_nan=False)


@st.composite
def shots(draw) -> Rect:
    x = draw(shot_coords)
    y = draw(shot_coords)
    w = draw(st.floats(min_value=10.0, max_value=60.0))
    h = draw(st.floats(min_value=10.0, max_value=60.0))
    return Rect(x, y, x + w, y + h)


class TestIntensityInvariants:
    @given(shots(), st.floats(-50, 150), st.floats(-50, 150))
    def test_intensity_in_unit_interval(self, shot, x, y):
        value = point_intensity([shot], x, y, SIGMA)
        assert -1e-12 <= value <= 1.0 + 1e-12

    @given(shots())
    def test_center_is_maximum_on_axis(self, shot):
        xs = np.linspace(shot.xbl - 20, shot.xtr + 20, 41)
        profile = shot_profile_1d(xs, shot.xbl, shot.xtr, SIGMA)
        center_value = shot_profile_1d(
            np.array([(shot.xbl + shot.xtr) / 2.0]), shot.xbl, shot.xtr, SIGMA
        )[0]
        assert center_value >= profile.max() - 1e-9

    @given(shots(), shots())
    def test_superposition(self, a, b):
        x, y = 40.0, 40.0
        together = point_intensity([a, b], x, y, SIGMA)
        separate = point_intensity([a], x, y, SIGMA) + point_intensity(
            [b], x, y, SIGMA
        )
        assert np.isclose(together, separate, atol=1e-12)

    @given(shots())
    def test_translation_invariance(self, shot):
        value_here = point_intensity([shot], shot.center.x, shot.center.y, SIGMA)
        moved = shot.translated(13.0, -7.0)
        value_there = point_intensity(
            [moved], moved.center.x, moved.center.y, SIGMA
        )
        assert np.isclose(value_here, value_there, atol=1e-12)

    @given(shots())
    def test_monotone_in_shot_growth(self, shot):
        """A larger shot never delivers less dose anywhere."""
        grown = shot.expanded(3.0)
        for probe in (shot.center, shot.bottom_left, Point_out(shot)):
            small = point_intensity([shot], probe.x, probe.y, SIGMA)
            big = point_intensity([grown], probe.x, probe.y, SIGMA)
            assert big >= small - 1e-12


def Point_out(shot: Rect):
    from repro.geometry.point import Point

    return Point(shot.xtr + 5.0, shot.ytr + 5.0)


class TestIncrementalConsistency:
    @given(st.lists(shots(), min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_incremental_equals_batch(self, shot_list):
        grid = PixelGrid(-20.0, -20.0, 2.0, 90, 90)
        incremental = IntensityMap(grid, SIGMA)
        for shot in shot_list:
            incremental.add(shot)
        batch = IntensityMap(grid, SIGMA)
        batch.rebuild(shot_list)
        assert np.max(np.abs(incremental.total - batch.total)) < 1e-9

    @given(st.lists(shots(), min_size=2, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_remove_order_irrelevant(self, shot_list):
        grid = PixelGrid(-20.0, -20.0, 2.0, 90, 90)
        imap = IntensityMap(grid, SIGMA)
        for shot in shot_list:
            imap.add(shot)
        imap.remove(shot_list[0])
        reference = IntensityMap(grid, SIGMA)
        reference.rebuild(shot_list[1:])
        assert np.max(np.abs(imap.total - reference.total)) < 1e-8
