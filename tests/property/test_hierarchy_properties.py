"""Hypothesis round-trips for transformed-instance correctness.

The hierarchy layer's contract: instantiating a cached template under a
placement transform produces exactly the shots that fracturing the
placed polygon directly would.  Translation instances are served by
translating the template's shots (bit-identical); rotated/mirrored
placements get an orientation-specific template, so the same guarantee
holds per orientation.  On rectangles — where every axis-parallel
dihedral image is again a rectangle — transforming the template's shots
matches a direct fracture of the transformed rectangle shot-set for
shot-set.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fracture.cache import FractureCache, translate_shots
from repro.geometry.polygon import Polygon
from repro.geometry.transform import ROTATIONS, Transform
from repro.mask.constraints import FractureSpec
from repro.mask.gds import GdsCell, GdsRef, Layout, TARGET_LAYER
from repro.mask.hierarchy import fracture_layout
from repro.mask.shape import MaskShape
from repro.methods import make_fracturer

SPEC = FractureSpec()

offsets = st.integers(min_value=-400, max_value=400)
transforms = st.builds(
    Transform,
    rotation=st.sampled_from(ROTATIONS),
    mirror_x=st.booleans(),
    dx=offsets.map(float),
    dy=offsets.map(float),
)


@st.composite
def staircase_polygons(draw) -> Polygon:
    """Rectilinear hole-free staircases on the integer nm grid."""
    steps = draw(st.integers(min_value=1, max_value=4))
    widths = draw(st.lists(st.integers(8, 60), min_size=steps, max_size=steps))
    heights = draw(st.lists(st.integers(8, 60), min_size=steps, max_size=steps))
    verts: list[tuple[float, float]] = [(0.0, 0.0)]
    x = 0.0
    for w, h in zip(widths, heights):
        x += w
        verts.append((x, verts[-1][1]))
        verts.append((x, verts[-1][1] + h))
    verts.append((0.0, verts[-1][1]))
    return Polygon(verts)


def fracture_direct(polygon, name="clip"):
    shape = MaskShape.from_polygon(
        polygon, pitch=SPEC.pitch, margin=SPEC.grid_margin, name=name
    )
    return make_fracturer("partition").fracture(shape, SPEC)


def shot_set(shots):
    return sorted((r.xbl, r.ybl, r.xtr, r.ytr) for r in shots)


class TestTranslatedInstances:
    @settings(max_examples=25, deadline=None)
    @given(staircase_polygons(), offsets, offsets)
    def test_cached_template_replay_is_bit_identical(self, poly, dx, dy):
        """Cache hit for a translate == direct fracture, shot for shot."""
        cache = FractureCache()
        template = fracture_direct(poly)
        cache.put_result(poly, SPEC, template, method="partition")

        moved = Transform.translation(float(dx), float(dy)).apply_polygon(poly)
        hit = cache.get_result(moved, SPEC, "partition")
        assert hit is not None
        assert hit.shots == translate_shots(template.shots, float(dx), float(dy))
        assert hit.shots == fracture_direct(moved).shots


class TestDihedralInstances:
    @settings(max_examples=20, deadline=None)
    @given(staircase_polygons(), transforms, offsets, offsets)
    def test_hierarchy_matches_direct_for_any_placement(
        self, poly, transform, dx, dy
    ):
        """Placing a cell twice under one orientation: the second
        placement is instantiated from the first's template and must
        equal fracturing both placements directly."""
        unit = GdsCell("UNIT", polygons=[(TARGET_LAYER, poly)])
        top = GdsCell("TOP", refs=[
            GdsRef(
                "UNIT", origin=(transform.dx, transform.dy),
                rotation=transform.rotation, mirror_x=transform.mirror_x,
            ),
            GdsRef(
                "UNIT",
                origin=(transform.dx + 1000.0 + dx, transform.dy - 1000.0 + dy),
                rotation=transform.rotation, mirror_x=transform.mirror_x,
            ),
        ])
        layout = Layout(cells={"UNIT": unit, "TOP": top}, top="TOP")
        frac = make_fracturer("partition")
        hier = fracture_layout(layout, frac, SPEC, hierarchy=True)
        flat = fracture_layout(layout, frac, SPEC, hierarchy=False)
        assert hier.stats["template_fractures"] == 1
        assert hier.stats["cache_hits"] == 1
        assert hier.shots == flat.shots


class TestRectangleTemplates:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(8, 120), st.integers(8, 120),
        st.sampled_from(ROTATIONS), st.booleans(), offsets, offsets,
    )
    def test_transformed_template_matches_direct_fracture(
        self, w, h, rotation, mirror, dx, dy
    ):
        """On rectangles, fracturing a rotated/mirrored placement
        directly equals transforming the cached template's shots
        (shot-set equality up to ordering)."""
        rect = Polygon([(0, 0), (w, 0), (w, h), (0, h)])
        template = fracture_direct(rect)
        t = Transform(
            rotation=rotation, mirror_x=mirror, dx=float(dx), dy=float(dy)
        )
        direct = fracture_direct(t.apply_polygon(rect))
        assert shot_set(direct.shots) == shot_set(t.apply_rects(template.shots))
