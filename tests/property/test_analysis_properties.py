"""Hypothesis property tests for the analysis modules (schedule, boolean,
latitude)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebeam.latitude import dose_window
from repro.ebeam.schedule import (
    greedy_schedule,
    natural_schedule,
    schedule_time,
    subfield_schedule,
)
from repro.geometry.boolean import (
    polygon_area_of,
    polygon_difference,
    polygon_intersection,
    polygon_union,
)
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape

SPEC = FractureSpec()


@st.composite
def shot_lists(draw) -> list[Rect]:
    n = draw(st.integers(min_value=1, max_value=12))
    shots = []
    for _ in range(n):
        x = draw(st.floats(0, 900, allow_nan=False))
        y = draw(st.floats(0, 900, allow_nan=False))
        w = draw(st.floats(10, 80))
        h = draw(st.floats(10, 80))
        shots.append(Rect(x, y, x + w, y + h))
    return shots


@st.composite
def rect_polygons(draw) -> Polygon:
    x = draw(st.integers(0, 60))
    y = draw(st.integers(0, 60))
    w = draw(st.integers(10, 50))
    h = draw(st.integers(10, 50))
    return Polygon([(x, y), (x + w, y), (x + w, y + h), (x, y + h)])


class TestScheduleProperties:
    @given(shot_lists())
    @settings(max_examples=40, deadline=None)
    def test_orders_are_permutations(self, shots):
        for schedule in (
            natural_schedule(shots),
            greedy_schedule(shots),
            subfield_schedule(shots),
        ):
            assert sorted(schedule.order) == list(range(len(shots)))

    @given(shot_lists())
    @settings(max_examples=40, deadline=None)
    def test_greedy_never_worse_than_natural(self, shots):
        assert (
            greedy_schedule(shots).total_time_us
            <= natural_schedule(shots).total_time_us + 1e-9
        )

    @given(shot_lists())
    @settings(max_examples=40, deadline=None)
    def test_time_lower_bound_is_flash_sum(self, shots):
        from repro.ebeam.schedule import TravelModel

        model = TravelModel()
        total, _ = schedule_time(shots, list(range(len(shots))), model)
        assert total >= len(shots) * model.flash_us - 1e-9


class TestBooleanProperties:
    @given(rect_polygons(), rect_polygons())
    @settings(max_examples=25, deadline=None)
    def test_commutativity(self, a, b):
        assert polygon_area_of(polygon_union(a, b)) == polygon_area_of(
            polygon_union(b, a)
        )
        assert polygon_area_of(polygon_intersection(a, b)) == polygon_area_of(
            polygon_intersection(b, a)
        )

    @given(rect_polygons(), rect_polygons())
    @settings(max_examples=25, deadline=None)
    def test_area_bounds(self, a, b):
        union = polygon_area_of(polygon_union(a, b))
        inter = polygon_area_of(polygon_intersection(a, b))
        assert inter <= min(a.area, b.area) + 1.0
        assert union >= max(a.area, b.area) - 1.0
        assert union <= a.area + b.area + 1.0

    @given(rect_polygons(), rect_polygons())
    @settings(max_examples=25, deadline=None)
    def test_difference_partition(self, a, b):
        """|A\\B| + |A∩B| = |A| at pixel resolution."""
        diff = polygon_area_of(polygon_difference(a, b))
        inter = polygon_area_of(polygon_intersection(a, b))
        assert abs((diff + inter) - a.area) <= 0.02 * a.area + 2.0


class TestLatitudeProperties:
    @given(st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_window_ordering_consistent(self, bias):
        """For a single shot, the dose window ends move monotonically with
        shot bias: growing the shot lowers both s_min and s_max."""
        polygon = Polygon([(0, 0), (60, 0), (60, 40), (0, 40)])
        shape = MaskShape.from_polygon(polygon, margin=SPEC.grid_margin)
        small = dose_window([Rect(-1, -1, 61, 41)], shape, SPEC)
        biased = dose_window(
            [Rect(-1 - bias, -1 - bias, 61 + bias, 41 + bias)], shape, SPEC
        )
        if bias > 0:
            assert biased.s_min <= small.s_min + 1e-9
            assert biased.s_max <= small.s_max + 1e-9
        elif bias < 0:
            assert biased.s_min >= small.s_min - 1e-9
