"""Hypothesis property tests for refinement invariants.

These run Algorithm 1 components on randomized small instances and check
the contracts the rest of the library depends on: minimum shot size is
never violated, merging never loses coverage bookkeeping, the incremental
intensity stays consistent with a rebuild, and refinement never returns
something worse than its input.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fracture.merge import merge_shots
from repro.fracture.refine import RefineParams, refine
from repro.fracture.state import RefinementState
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec, check_solution
from repro.mask.shape import MaskShape

SPEC = FractureSpec()


def _target() -> MaskShape:
    polygon = Polygon([(0, 0), (90, 0), (90, 60), (0, 60)])
    return MaskShape.from_polygon(polygon, margin=SPEC.grid_margin, name="t")


_SHARED_TARGET = _target()


@st.composite
def shot_lists(draw) -> list[Rect]:
    n = draw(st.integers(min_value=1, max_value=5))
    shots = []
    for _ in range(n):
        x = draw(st.floats(-5, 70, allow_nan=False))
        y = draw(st.floats(-5, 40, allow_nan=False))
        w = draw(st.floats(SPEC.lmin, 70.0))
        h = draw(st.floats(SPEC.lmin, 50.0))
        shots.append(Rect(round(x), round(y), round(x + w), round(y + h)))
    return shots


class TestRefinementInvariants:
    @given(shot_lists())
    @settings(max_examples=15, deadline=None)
    def test_refine_never_worse_than_input(self, shots):
        before = check_solution(shots, _SHARED_TARGET, SPEC)
        refined, _trace = refine(
            _SHARED_TARGET, SPEC, shots, RefineParams(nmax=40)
        )
        after = check_solution(refined, _SHARED_TARGET, SPEC)
        assert after.total_failing <= before.total_failing

    @given(shot_lists())
    @settings(max_examples=15, deadline=None)
    def test_min_size_preserved_through_refinement(self, shots):
        refined, _ = refine(_SHARED_TARGET, SPEC, shots, RefineParams(nmax=40))
        assert all(s.meets_min_size(SPEC.lmin - 1e-9) for s in refined)

    @given(shot_lists())
    @settings(max_examples=15, deadline=None)
    def test_merge_reduces_count_and_keeps_intensity_consistent(self, shots):
        state = RefinementState(_SHARED_TARGET, SPEC, shots)
        merges = merge_shots(state)
        assert len(state.shots) == len(shots) - merges
        reference = RefinementState(_SHARED_TARGET, SPEC, state.shots)
        assert np.max(np.abs(state.imap.total - reference.imap.total)) < 1e-6

    @given(shot_lists())
    @settings(max_examples=15, deadline=None)
    def test_state_report_matches_independent_checker(self, shots):
        state = RefinementState(_SHARED_TARGET, SPEC, shots)
        internal = state.report()
        external = check_solution(shots, _SHARED_TARGET, SPEC)
        assert internal.total_failing == external.total_failing
        assert abs(internal.cost - external.cost) < 1e-6

    @given(shot_lists(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_cost_integral_matches_window_cost(self, shots, seed):
        state = RefinementState(_SHARED_TARGET, SPEC, shots)
        integral = state.cost_integral()
        rng = np.random.default_rng(seed)
        ny, nx = state.imap.total.shape
        for _ in range(5):
            y1, y2 = sorted(rng.integers(0, ny + 1, 2))
            x1, x2 = sorted(rng.integers(0, nx + 1, 2))
            window = (slice(int(y1), int(y2)), slice(int(x1), int(x2)))
            direct = state.window_cost(window, state.imap.total[window])
            fast = state.window_cost_from_integral(integral, window)
            assert abs(direct - fast) < 1e-6
