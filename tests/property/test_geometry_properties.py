"""Hypothesis property tests for the geometry kernel."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.partition import partition_rectilinear
from repro.geometry.point import Point, segment_point_distance
from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid, rasterize_polygon
from repro.geometry.rdp import rdp_polyline
from repro.geometry.rect import Rect, total_union_area
from repro.geometry.trace import trace_boundary

coordinates = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw) -> Rect:
    x1, x2 = sorted((draw(coordinates), draw(coordinates)))
    y1, y2 = sorted((draw(coordinates), draw(coordinates)))
    return Rect(x1, y1, x2, y2)


@st.composite
def staircase_polygons(draw) -> Polygon:
    """Random rectilinear hole-free staircase polygons on integer grid."""
    steps = draw(st.integers(min_value=1, max_value=6))
    widths = draw(
        st.lists(st.integers(2, 15), min_size=steps, max_size=steps)
    )
    heights = draw(
        st.lists(st.integers(2, 15), min_size=steps, max_size=steps)
    )
    verts: list[tuple[float, float]] = [(0.0, 0.0)]
    x = 0.0
    total_w = float(sum(widths))
    for w, h in zip(widths, heights):
        x += w
        verts.append((x, verts[-1][1]))
        verts.append((x, verts[-1][1] + h))
    top = verts[-1][1]
    verts.append((0.0, top))
    return Polygon(verts)


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_area_symmetric_and_bounded(self, a, b):
        area = a.intersection_area(b)
        assert area == b.intersection_area(a)
        assert 0.0 <= area <= min(a.area, b.area) + 1e-9

    @given(rects(), rects())
    def test_union_bbox_contains_both(self, a, b):
        bbox = a.union_bbox(b)
        assert bbox.contains_rect(a) and bbox.contains_rect(b)

    @given(rects(), st.floats(min_value=0.0, max_value=50.0))
    def test_expanded_contains_original(self, r, margin):
        assert r.expanded(margin).contains_rect(r)

    @given(rects())
    def test_contains_center(self, r):
        assert r.contains_point(r.center)

    @given(st.lists(rects(), max_size=6))
    def test_union_area_bounds(self, rs):
        union = total_union_area(rs)
        total = sum(r.area for r in rs)
        biggest = max((r.area for r in rs), default=0.0)
        assert biggest - 1e-6 <= union <= total + 1e-6


class TestRdpProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=2,
            max_size=30,
        ),
        st.floats(min_value=0.01, max_value=20.0),
    )
    def test_tolerance_guarantee(self, raw_points, epsilon):
        points = [Point(x, y) for x, y in raw_points]
        simplified = rdp_polyline(points, epsilon)
        assert simplified[0] == points[0]
        assert simplified[-1] == points[-1]
        for p in points:
            nearest = min(
                (
                    segment_point_distance(a, b, p)
                    for a, b in zip(simplified, simplified[1:])
                ),
                default=p.distance_to(simplified[0]),
            )
            assert nearest <= epsilon + 1e-6


class TestPolygonProperties:
    @given(staircase_polygons())
    def test_staircase_area_positive_and_rectilinear(self, poly):
        assert poly.area > 0.0
        assert poly.is_rectilinear()

    @given(staircase_polygons())
    def test_partition_is_exact(self, poly):
        rects = partition_rectilinear(poly)
        assert math.isclose(sum(r.area for r in rects), poly.area, rel_tol=1e-9)
        assert math.isclose(total_union_area(rects), poly.area, rel_tol=1e-9)

    @given(staircase_polygons())
    @settings(max_examples=25, deadline=None)
    def test_raster_trace_roundtrip(self, poly):
        bbox = poly.bounding_box()
        assume(bbox.width >= 2 and bbox.height >= 2)
        grid = PixelGrid.for_rect(bbox, pitch=1.0, margin=2.0)
        mask = rasterize_polygon(poly, grid)
        assume(mask.any())
        traced = trace_boundary(mask, grid)
        remask = rasterize_polygon(traced, grid)
        assert np.array_equal(mask, remask)
