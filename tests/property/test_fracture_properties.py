"""Hypothesis property tests for fracturing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fracture.corner_points import (
    CornerType,
    ShotCornerPoint,
    cluster_corner_points,
    extract_corner_points,
)
from repro.fracture.graph_color import approximate_fracture, pair_test_shot
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.graphlib.clique_cover import clique_partition, is_clique_partition
from repro.graphlib.coloring import greedy_color, is_proper_coloring
from repro.graphlib.graph import Graph
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape


@st.composite
def random_graphs(draw) -> Graph:
    n = draw(st.integers(min_value=0, max_value=18))
    g = Graph(n)
    if n >= 2:
        edge_count = draw(st.integers(min_value=0, max_value=n * (n - 1) // 2))
        for _ in range(edge_count):
            u = draw(st.integers(0, n - 1))
            v = draw(st.integers(0, n - 1))
            if u != v:
                g.add_edge(u, v)
    return g


@st.composite
def corner_point_lists(draw) -> list[ShotCornerPoint]:
    n = draw(st.integers(min_value=0, max_value=20))
    points = []
    for _ in range(n):
        x = draw(st.floats(0, 200, allow_nan=False))
        y = draw(st.floats(0, 200, allow_nan=False))
        ctype = draw(st.sampled_from(list(CornerType)))
        points.append(ShotCornerPoint(Point(x, y), ctype))
    return points


class TestGraphInvariants:
    @given(random_graphs(), st.sampled_from(["given", "largest_first", "dsatur"]))
    def test_coloring_always_proper(self, g, strategy):
        assert is_proper_coloring(g, greedy_color(g, strategy))

    @given(random_graphs())
    def test_clique_partition_always_valid(self, g):
        assert is_clique_partition(g, clique_partition(g))


class TestCornerPointInvariants:
    @given(corner_point_lists(), st.floats(min_value=1.0, max_value=30.0))
    def test_clustering_preserves_types_and_never_grows(self, points, lth):
        merged = cluster_corner_points(points, lth)
        assert len(merged) <= len(points)
        assert {p.ctype for p in merged} == {p.ctype for p in points}

    @given(corner_point_lists(), st.floats(min_value=1.0, max_value=30.0))
    def test_clustering_idempotent(self, points, lth):
        once = cluster_corner_points(points, lth)
        twice = cluster_corner_points(once, lth)
        # Same-type centroids farther than the threshold stay put.
        assert len(twice) <= len(once)

    @given(corner_point_lists())
    def test_test_shots_respect_min_size(self, points):
        lmin = 10.0
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                shot = pair_test_shot(points[i], points[j], lmin, 7.0)
                if shot is not None:
                    assert shot.width >= lmin - 1e-9
                    assert shot.height >= lmin - 1e-9


@st.composite
def small_rectilinear_targets(draw) -> Polygon:
    """L/T-like targets assembled from two overlapping integer rects."""
    x1 = draw(st.integers(0, 30))
    y1 = draw(st.integers(0, 30))
    w1 = draw(st.integers(25, 60))
    h1 = draw(st.integers(25, 60))
    x2 = draw(st.integers(x1, x1 + w1 - 20))
    y2 = draw(st.integers(y1, y1 + h1 - 20))
    w2 = draw(st.integers(25, 60))
    h2 = draw(st.integers(25, 60))
    import numpy as np

    from repro.geometry.raster import PixelGrid
    from repro.geometry.trace import trace_boundary

    grid = PixelGrid(0.0, 0.0, 1.0, 140, 140)
    mask = np.zeros(grid.shape, dtype=bool)
    mask[y1 : y1 + h1, x1 : x1 + w1] = True
    mask[y2 : y2 + h2, x2 : x2 + w2] = True
    return trace_boundary(mask, grid)


class TestStageOneInvariants:
    @given(small_rectilinear_targets())
    @settings(max_examples=15, deadline=None)
    def test_initial_shots_valid(self, polygon):
        spec = FractureSpec()
        shape = MaskShape.from_polygon(polygon, margin=spec.grid_margin)
        shots, diagnostics = approximate_fracture(shape, spec)
        assert diagnostics["corner_points"] >= 4
        for shot in shots:
            assert shot.meets_min_size(spec.lmin - 1e-9)

    @given(small_rectilinear_targets())
    @settings(max_examples=10, deadline=None)
    def test_corner_points_outside_target(self, polygon):
        spec = FractureSpec()
        bbox = polygon.bounding_box().expanded(2.0 * spec.lth)
        for scp in extract_corner_points(polygon, spec.lth):
            # Corner points are pushed L_th/√2 off the boundary, so they
            # always stay within the padded neighbourhood of the target.
            assert bbox.contains_point(scp.point)
