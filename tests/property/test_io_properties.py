"""Hypothesis property tests for the serialization layers (JSON + GDSII)."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.gds import GdsCell, _gds_real8, read_gds, write_gds
from repro.mask.io import (
    polygon_from_dict,
    polygon_to_dict,
    rect_from_list,
    rect_to_list,
)

finite_coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def simple_polygons(draw) -> Polygon:
    """Star-shaped polygons around a centre — always simple."""
    import math

    n = draw(st.integers(min_value=3, max_value=12))
    cx = draw(st.floats(-1000, 1000, allow_nan=False))
    cy = draw(st.floats(-1000, 1000, allow_nan=False))
    pts = []
    for k in range(n):
        radius = draw(st.floats(min_value=1.0, max_value=500.0))
        angle = 2.0 * math.pi * k / n
        pts.append(Point(cx + radius * math.cos(angle), cy + radius * math.sin(angle)))
    return Polygon(pts)


@st.composite
def integer_polygons(draw) -> Polygon:
    """Integer-coordinate star polygons (GDSII stores int32 nm)."""
    import math

    n = draw(st.integers(min_value=3, max_value=10))
    pts = []
    for k in range(n):
        radius = draw(st.integers(min_value=5, max_value=5000))
        angle = 2.0 * math.pi * k / n
        pts.append(
            Point(round(radius * math.cos(angle)), round(radius * math.sin(angle)))
        )
    try:
        return Polygon(pts)
    except ValueError:
        return Polygon([(0, 0), (10, 0), (10, 10)])


class TestJsonRoundtrips:
    @given(simple_polygons())
    def test_polygon_roundtrip_exact(self, polygon):
        assert polygon_from_dict(polygon_to_dict(polygon)) == polygon

    @given(finite_coords, finite_coords, st.floats(0, 1e5, allow_nan=False),
           st.floats(0, 1e5, allow_nan=False))
    def test_rect_roundtrip_exact(self, x, y, w, h):
        rect = Rect(x, y, x + w, y + h)
        assert rect_from_list(rect_to_list(rect)) == rect


class TestGdsReal8:
    @given(st.floats(min_value=1e-12, max_value=1e12, allow_nan=False))
    def test_real8_decodes_to_input(self, value):
        encoded = _gds_real8(value)
        first = encoded[0]
        mantissa = int.from_bytes(encoded[1:], "big") / float(1 << 56)
        decoded = mantissa * 16.0 ** ((first & 0x7F) - 64)
        assert abs(decoded - value) <= 1e-12 * value

    @given(st.floats(min_value=1e-12, max_value=1e12, allow_nan=False))
    def test_real8_length_and_format(self, value):
        encoded = _gds_real8(value)
        assert len(encoded) == 8
        # Positive numbers have the sign bit clear.
        assert not (encoded[0] & 0x80)


class TestGdsRoundtrips:
    @given(polygons=st.lists(integer_polygons(), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_cell_roundtrip(self, tmp_path_factory, polygons):
        tmp = tmp_path_factory.mktemp("gds")
        cell = GdsCell(
            name="T", polygons=[(1 + i % 3, p) for i, p in enumerate(polygons)]
        )
        path = tmp / "cell.gds"
        write_gds(cell, path)
        loaded = read_gds(path)
        assert loaded.name == "T"
        assert len(loaded.polygons) == len(cell.polygons)
        for (layer_a, poly_a), (layer_b, poly_b) in zip(
            cell.polygons, loaded.polygons
        ):
            assert layer_a == layer_b
            assert poly_a == poly_b

    @given(polygon=integer_polygons())
    @settings(max_examples=25, deadline=None)
    def test_every_record_length_even(self, tmp_path_factory, polygon):
        tmp = tmp_path_factory.mktemp("gds")
        path = tmp / "c.gds"
        write_gds(GdsCell("C", [(1, polygon)]), path)
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            length, _ = struct.unpack(">HH", data[offset : offset + 4])
            assert length % 2 == 0
            offset += length
        assert offset == len(data)


class TestGdsRobustness:
    @given(blob=st.binary(min_size=0, max_size=400))
    @settings(max_examples=150, deadline=None)
    def test_fuzz_never_crashes(self, tmp_path_factory, blob):
        """Arbitrary bytes either parse or raise GdsError — never a bare
        struct.error / IndexError / UnicodeDecodeError."""
        from repro.mask.gds import GdsError, read_gds

        tmp = tmp_path_factory.mktemp("fuzz")
        path = tmp / "fuzz.gds"
        path.write_bytes(blob)
        try:
            read_gds(path)
        except GdsError:
            pass

    @given(blob=st.binary(min_size=0, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_fuzz_after_valid_header(self, tmp_path_factory, blob):
        """Fuzz bytes appended to a valid prefix are also handled."""
        import struct as _struct

        from repro.mask.gds import GdsError, read_gds

        prefix = _struct.pack(">HHh", 6, 0x0002, 600)  # HEADER record
        tmp = tmp_path_factory.mktemp("fuzz2")
        path = tmp / "fuzz.gds"
        path.write_bytes(prefix + blob)
        try:
            read_gds(path)
        except GdsError:
            pass
