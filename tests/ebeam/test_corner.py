"""Unit tests for corner rounding analysis and L_th."""

import math

import numpy as np
import pytest

from repro.ebeam.corner import compute_lth, corner_pullback, corner_rounding_contour
from repro.ebeam.intensity import point_intensity
from repro.geometry.rect import Rect

SIGMA = 6.25


class TestContour:
    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            corner_rounding_contour(SIGMA, rho=1.5)

    def test_contour_points_on_level_set(self):
        """Every contour point evaluates to ρ under the exact model."""
        contour = corner_rounding_contour(SIGMA, rho=0.5, samples=201)
        big = Rect(-1000.0, -1000.0, 0.0, 0.0)  # quarter-plane-ish shot
        for x, y in contour[:: len(contour) // 15]:
            if abs(x) > 3 * SIGMA or abs(y) > 3 * SIGMA:
                continue
            value = point_intensity([big], x, y, SIGMA)
            assert abs(value - 0.5) < 1e-3

    def test_contour_passes_through_diagonal_pullback(self):
        contour = corner_rounding_contour(SIGMA, rho=0.5, samples=2001)
        pullback = corner_pullback(SIGMA, rho=0.5)
        # The contour point nearest the diagonal is ~pullback/√2 on each axis.
        diag_dist = np.min(np.abs(contour[:, 0] - contour[:, 1]))
        k = int(np.argmin(np.abs(contour[:, 0] - contour[:, 1])))
        assert diag_dist < 0.2
        assert abs(contour[k, 0] + pullback / math.sqrt(2.0)) < 0.2

    def test_contour_asymptotes_to_printed_edge(self):
        contour = corner_rounding_contour(SIGMA, rho=0.5, samples=2001)
        # Far from the corner (x → −3σ) the contour approaches y = 0.
        assert abs(contour[0, 1]) < 0.25


class TestPullback:
    def test_positive_for_half_threshold(self):
        assert corner_pullback(SIGMA, rho=0.5) > 0.0

    def test_scales_with_sigma(self):
        assert np.isclose(
            corner_pullback(2 * SIGMA) / corner_pullback(SIGMA), 2.0
        )


class TestLth:
    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            compute_lth(SIGMA, gamma=0.0)

    def test_paper_parameters_magnitude(self):
        """For σ=6.25, γ=2 the 45° segment is in the 10–20 nm range."""
        lth = compute_lth(SIGMA, gamma=2.0)
        assert 8.0 < lth < 22.0

    def test_monotone_in_gamma(self):
        assert compute_lth(SIGMA, 1.0) < compute_lth(SIGMA, 2.0) < compute_lth(SIGMA, 4.0)

    def test_scales_roughly_with_sigma(self):
        small = compute_lth(3.0, 1.0)
        large = compute_lth(6.0, 2.0)
        assert np.isclose(large / small, 2.0, rtol=0.1)

    def test_cached(self):
        assert compute_lth(SIGMA, 2.0) == compute_lth(SIGMA, 2.0)
