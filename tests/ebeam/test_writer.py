"""Unit tests for the VSB writer model."""

import pytest

from repro.ebeam.writer import VsbWriterModel
from repro.geometry.rect import Rect


class TestConstruction:
    def test_invalid_cycle_time(self):
        with pytest.raises(ValueError):
            VsbWriterModel(shot_cycle_us=0.0)

    def test_invalid_overhead(self):
        with pytest.raises(ValueError):
            VsbWriterModel(stage_overhead=1.0)


class TestWriteTime:
    def test_zero_shots(self):
        assert VsbWriterModel().write_time_seconds(0) == 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            VsbWriterModel().write_time_seconds(-1)

    def test_linear_in_shot_count(self):
        w = VsbWriterModel()
        assert w.write_time_seconds(2_000) == pytest.approx(
            2 * w.write_time_seconds(1_000)
        )

    def test_overhead_inflates(self):
        lean = VsbWriterModel(stage_overhead=0.0)
        padded = VsbWriterModel(stage_overhead=0.5)
        assert padded.write_time_seconds(100) == pytest.approx(
            2 * lean.write_time_seconds(100)
        )

    def test_critical_mask_regime(self):
        """~10^10 shots lands in the multi-day regime reported by [2]."""
        hours = VsbWriterModel().write_time_hours(10_000_000_000)
        assert hours > 48.0

    def test_full_mask_estimate(self):
        w = VsbWriterModel()
        assert w.full_mask_estimate(10.0, 1e9) == w.write_time_hours(int(1e10))


class TestValidation:
    def test_flags_undersize_and_oversize(self):
        w = VsbWriterModel(max_shot_size_nm=100.0)
        shots = [Rect(0, 0, 5, 50), Rect(0, 0, 50, 50), Rect(0, 0, 150, 50)]
        problems = w.validate_shots(shots, lmin=10.0)
        assert len(problems) == 2
        assert "below" in problems[0] and "above" in problems[1]

    def test_clean_list(self):
        w = VsbWriterModel()
        assert w.validate_shots([Rect(0, 0, 50, 50)], lmin=10.0) == []
