"""Unit tests for the Gaussian proximity kernel (Eq. 2)."""

import numpy as np
import pytest

from repro.ebeam.kernel import GaussianKernel


class TestConstruction:
    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GaussianKernel(sigma=0.0)

    def test_invalid_truncation(self):
        with pytest.raises(ValueError):
            GaussianKernel(sigma=1.0, truncation=0.0)


class TestValues:
    def test_peak_value(self):
        k = GaussianKernel(sigma=6.25)
        assert np.isclose(k.value(0.0, 0.0), 1.0 / (np.pi * 6.25**2))

    def test_radial_symmetry(self):
        k = GaussianKernel(sigma=5.0)
        assert np.isclose(k.value(3.0, 4.0), k.value(5.0, 0.0))
        assert np.isclose(k.value(-3.0, 4.0), k.value(3.0, -4.0))

    def test_truncated_beyond_3_sigma(self):
        k = GaussianKernel(sigma=6.25)
        assert k.value(3.01 * 6.25, 0.0) == 0.0
        assert k.value(2.99 * 6.25, 0.0) > 0.0

    def test_support_radius(self):
        assert GaussianKernel(sigma=2.0).support_radius() == 6.0

    def test_vectorized_input(self):
        k = GaussianKernel(sigma=6.25)
        xs = np.linspace(-20, 20, 11)
        out = k.value(xs, np.zeros_like(xs))
        assert out.shape == xs.shape
        assert out.argmax() == 5


class TestNormalization:
    def test_truncated_mass_close_to_one(self):
        k = GaussianKernel(sigma=6.25)
        mass = k.truncated_mass()
        assert 0.9998 < mass < 1.0
        # Paper Eq. 2 truncates at 3σ: mass loss is exp(-9) ≈ 1.2e-4.
        assert np.isclose(1.0 - mass, np.exp(-9.0))

    def test_discretized_sums_to_mass(self):
        k = GaussianKernel(sigma=6.25)
        samples = k.discretized(pitch=0.5)
        numeric_mass = samples.sum() * 0.5**2
        assert abs(numeric_mass - k.truncated_mass()) < 1e-3

    def test_discretized_odd_square(self):
        samples = GaussianKernel(sigma=4.0).discretized(pitch=1.0)
        assert samples.shape[0] == samples.shape[1]
        assert samples.shape[0] % 2 == 1

    def test_discretized_bad_pitch(self):
        with pytest.raises(ValueError):
            GaussianKernel(sigma=4.0).discretized(pitch=0.0)
