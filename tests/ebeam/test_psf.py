"""Unit tests for the double-Gaussian PSF extension."""

import numpy as np
import pytest

from repro.ebeam.psf import (
    DoubleGaussianExposure,
    DoubleGaussianPsf,
    dose_margin,
    effective_threshold_shift,
)
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect


class TestPsfParameters:
    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            DoubleGaussianPsf(sigma_forward=0.0)
        with pytest.raises(ValueError):
            DoubleGaussianPsf(beta=3.0, sigma_forward=6.25)

    def test_negative_eta(self):
        with pytest.raises(ValueError):
            DoubleGaussianPsf(eta=-0.1)


class TestExposure:
    def _setup(self, eta: float):
        grid = PixelGrid(0.0, 0.0, 1.0, 120, 120)
        psf = DoubleGaussianPsf(eta=eta, beta=500.0)
        return DoubleGaussianExposure(grid, psf), [Rect(30, 30, 90, 90)]

    def test_eta_zero_reduces_to_forward_model(self):
        exposure, shots = self._setup(eta=0.0)
        assert np.allclose(exposure.total(shots), exposure.forward(shots))

    def test_backscatter_adds_background(self):
        exposure, shots = self._setup(eta=0.5)
        forward = exposure.forward(shots)
        full = exposure.total(shots)
        # Far outside the shot the forward term is ~0 but backscatter is not.
        assert forward[5, 5] < 1e-6
        assert full[5, 5] > forward[5, 5]

    def test_normalization_keeps_interior_near_one(self):
        exposure, shots = self._setup(eta=0.5)
        full = exposure.total(shots)
        assert full[60, 60] < 1.0 + 1e-9
        assert full[60, 60] > 0.6

    def test_coverage_counts_overlap(self):
        grid = PixelGrid(0.0, 0.0, 1.0, 50, 50)
        exposure = DoubleGaussianExposure(grid)
        cov = exposure.coverage([Rect(0, 0, 30, 30), Rect(20, 0, 50, 30)])
        assert cov[10, 25] == 2.0
        assert cov[10, 5] == 1.0


class TestDoseMargin:
    def test_low_density_window_underdoses(self, rect_shape, spec):
        """With PSF normalization a sparse window receives less than the
        calibrated dose: the P_on margin collapses — exactly the effect
        dose-correction flows compensate for."""
        shots = [Rect(-1, -1, 61, 41)]
        margins = dose_margin(shots, rect_shape, spec,
                              DoubleGaussianPsf(eta=0.6, beta=500.0))
        assert margins["forward_on_margin"] > 0.0
        assert margins["forward_off_margin"] > 0.0
        assert margins["full_on_margin"] < margins["forward_on_margin"]

    def test_forward_margins_match_base_model(self, rect_shape, spec):
        from repro.ebeam.intensity_map import IntensityMap

        shots = [Rect(-1, -1, 61, 41)]
        margins = dose_margin(shots, rect_shape, spec)
        imap = IntensityMap(rect_shape.grid, spec.sigma)
        for s in shots:
            imap.add(s)
        pixels = rect_shape.pixels(spec.gamma)
        assert margins["forward_on_margin"] == pytest.approx(
            float(imap.total[pixels.on].min()) - spec.rho, abs=1e-9
        )


class TestThresholdShift:
    def test_zero_density(self):
        assert effective_threshold_shift(DoubleGaussianPsf(eta=0.5), 0.0) == 0.0

    def test_half_density_rule_of_thumb(self):
        shift = effective_threshold_shift(DoubleGaussianPsf(eta=0.5), 0.5)
        assert shift == pytest.approx(0.5 * 0.5 / 1.5)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            effective_threshold_shift(DoubleGaussianPsf(), 1.5)

    def test_monotone_in_density(self):
        psf = DoubleGaussianPsf(eta=0.8)
        shifts = [effective_threshold_shift(psf, d) for d in (0.1, 0.5, 0.9)]
        assert shifts == sorted(shifts)
