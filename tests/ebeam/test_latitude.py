"""Unit tests for dose-latitude analysis."""

import numpy as np
import pytest

from repro.ebeam.latitude import compare_latitude, dose_window, edge_slope_stats
from repro.geometry.rect import Rect


class TestDoseWindow:
    def test_clean_solution_has_positive_latitude(self, rect_shape, spec):
        window = dose_window([Rect(-1, -1, 61, 41)], rect_shape, spec)
        assert window.feasible_at_nominal
        assert window.latitude > 0.0
        assert window.margin > 0.0

    def test_empty_solution_infeasible(self, rect_shape, spec):
        window = dose_window([], rect_shape, spec)
        assert not window.feasible_at_nominal

    def test_overexposed_solution_needs_lower_dose(self, rect_shape, spec):
        window = dose_window([Rect(-30, -30, 90, 70)], rect_shape, spec)
        assert window.s_max < 1.0  # must scale dose down to be legal

    def test_window_consistent_with_checker(self, rect_shape, spec):
        """Scaling the dose inside the window keeps the solution feasible
        (verified by brute force at a few scale factors)."""
        from repro.ebeam.intensity_map import IntensityMap

        shots = [Rect(-1, -1, 61, 41)]
        window = dose_window(shots, rect_shape, spec)
        imap = IntensityMap(rect_shape.grid, spec.sigma)
        for s in shots:
            imap.add(s)
        pixels = rect_shape.pixels(spec.gamma)
        for scale in np.linspace(window.s_min + 1e-6, window.s_max - 1e-6, 4):
            total = imap.total * scale
            assert not (pixels.on & (total < spec.rho)).any()
            assert not (pixels.off & (total >= spec.rho)).any()
        # Just beyond the window the solution must break.
        total = imap.total * (window.s_max + 1e-3)
        assert (pixels.off & (total >= spec.rho)).any()

    def test_tight_cover_has_less_latitude_than_roomy(self, rect_shape, spec):
        """A shot hugging the outer band edge prints but leaves less dose
        headroom than one centred on the target."""
        roomy = dose_window([Rect(-1, -1, 61, 41)], rect_shape, spec)
        tight = dose_window([Rect(-2, -2, 62, 42)], rect_shape, spec)
        assert tight.s_max <= roomy.s_max + 1e-9


class TestEdgeSlope:
    def test_positive_slopes_on_clean_solution(self, rect_shape, spec):
        stats = edge_slope_stats([Rect(-1, -1, 61, 41)], rect_shape, spec)
        assert stats["min_slope"] > 0.0
        assert stats["mean_slope"] >= stats["min_slope"]

    def test_no_shots_zero_slope(self, rect_shape, spec):
        stats = edge_slope_stats([], rect_shape, spec)
        assert stats["mean_slope"] == pytest.approx(0.0, abs=1e-12)


class TestCompare:
    def test_compare_multiple_methods(self, rect_shape, spec):
        windows = compare_latitude(
            {
                "single": [Rect(-1, -1, 61, 41)],
                "split": [Rect(-1, -1, 31, 41), Rect(29, -1, 61, 41)],
            },
            rect_shape,
            spec,
        )
        assert set(windows) == {"single", "split"}
        assert all(w.feasible_at_nominal for w in windows.values())
