"""Unit tests for contour metrology (CD / EPE measurement)."""

import numpy as np
import pytest

from repro.ebeam.metrology import epe_report, measure_cutline
from repro.geometry.rect import Rect


class TestMeasureCutline:
    def test_invalid_orientation(self, rect_shape, spec):
        with pytest.raises(ValueError):
            measure_cutline([], rect_shape, spec, 20.0, "diagonal")

    def test_matched_solution_small_errors(self, rect_shape, spec):
        cut = measure_cutline([Rect(-1, -1, 61, 41)], rect_shape, spec, 20.0, "h")
        assert len(cut.printed) == 1
        assert len(cut.drawn) == 1
        assert abs(cut.cd_error) < 2.5  # within γ per edge
        assert cut.worst_edge_error() < 2.0

    def test_printed_cd_tracks_shot_width(self, rect_shape, spec):
        narrow = measure_cutline([Rect(10, -1, 50, 41)], rect_shape, spec, 20.0, "h")
        wide = measure_cutline([Rect(-1, -1, 61, 41)], rect_shape, spec, 20.0, "h")
        assert narrow.printed_cd < wide.printed_cd
        assert narrow.printed_cd == pytest.approx(40.0, abs=1.5)

    def test_vertical_cutline(self, rect_shape, spec):
        cut = measure_cutline([Rect(-1, -1, 61, 41)], rect_shape, spec, 30.0, "v")
        assert cut.printed_cd == pytest.approx(42.0, abs=2.0)
        assert cut.drawn_cd == pytest.approx(40.0, abs=1.1)

    def test_no_shots_nothing_printed(self, rect_shape, spec):
        cut = measure_cutline([], rect_shape, spec, 20.0, "h")
        assert cut.printed == ()
        assert cut.worst_edge_error() == float("inf")

    def test_two_bars_two_segments(self, spec):
        from repro.geometry.polygon import Polygon
        from repro.mask.shape import MaskShape

        poly = Polygon([(0, 0), (100, 0), (100, 30), (0, 30)])
        shape = MaskShape.from_polygon(poly, margin=spec.grid_margin)
        shots = [Rect(-1, -1, 40, 31), Rect(60, -1, 101, 31)]
        cut = measure_cutline(shots, shape, spec, 15.0, "h")
        assert len(cut.printed) == 2


class TestEpeReport:
    def test_clean_solution_within_tolerance(self, rect_shape, spec):
        report = epe_report([Rect(-1, -1, 61, 41)], rect_shape, spec)
        assert report["worst_epe"] < spec.gamma + 1.5
        assert report["mean_epe"] <= report["worst_epe"]

    def test_fractured_solution_in_spec(self, blob_shape, spec):
        """On curvy contours the along-cut error amplifies the normal
        (Eq. 4) tolerance wherever a cutline grazes the boundary, so the
        bound here is on the mean, not the worst grazing case."""
        from repro.fracture.pipeline import ModelBasedFracturer

        result = ModelBasedFracturer().fracture(blob_shape, spec)
        if result.feasible:
            report = epe_report(result.shots, blob_shape, spec)
            assert report["mean_epe"] < 2.5 * spec.gamma
            assert np.isfinite(report["worst_epe"])

    def test_biased_solution_flagged(self, rect_shape, spec):
        """A uniformly 4nm-oversized solution violates the EPE budget."""
        report = epe_report([Rect(-4, -4, 64, 44)], rect_shape, spec)
        assert report["worst_epe"] > spec.gamma

    def test_empty_solution(self, rect_shape, spec):
        report = epe_report([], rect_shape, spec)
        assert report["worst_epe"] == float("inf")
