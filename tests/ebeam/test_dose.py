"""Unit tests for the variable-dose extension."""

import numpy as np
import pytest

from repro.ebeam.dose import (
    DosedShot,
    count_failing,
    optimize_doses,
    total_intensity,
)
from repro.geometry.rect import Rect


class TestDosedShot:
    def test_positive_dose_required(self):
        with pytest.raises(ValueError):
            DosedShot(Rect(0, 0, 10, 10), dose=0.0)

    def test_default_unit_dose(self):
        assert DosedShot(Rect(0, 0, 10, 10)).dose == 1.0


class TestTotalIntensity:
    def test_dose_scales_linearly(self, rect_shape, spec):
        shot = Rect(0, 0, 60, 40)
        unit = total_intensity([DosedShot(shot, 1.0)], rect_shape, spec)
        double = total_intensity([DosedShot(shot, 2.0)], rect_shape, spec)
        assert np.allclose(double, 2.0 * unit, atol=1e-9)

    def test_counts_match_constraint_checker(self, rect_shape, spec):
        from repro.mask.constraints import check_solution

        shots = [Rect(-1, -1, 61, 41)]
        dosed = [DosedShot(s, 1.0) for s in shots]
        report = check_solution(shots, rect_shape, spec)
        assert count_failing(dosed, rect_shape, spec) == report.total_failing


class TestOptimizeDoses:
    def test_empty_input(self, rect_shape, spec):
        result = optimize_doses([], rect_shape, spec)
        assert result.shots == [] and result.failing_after == 0

    def test_invalid_bounds(self, rect_shape, spec):
        with pytest.raises(ValueError):
            optimize_doses([Rect(0, 0, 60, 40)], rect_shape, spec,
                           dose_bounds=(1.2, 1.6))

    def test_never_worse_than_unit_dose(self, rect_shape, spec):
        shots = [Rect(2, 2, 58, 38)]  # slightly undersized → failing P_on
        result = optimize_doses(shots, rect_shape, spec)
        assert result.failing_after <= result.failing_before

    def test_fixes_mild_underexposure(self, rect_shape, spec):
        """A shot pulled 2nm inside the target underexposes the band
        edge; raising its dose must fix most of it."""
        shots = [Rect(2, 2, 58, 38)]
        before = count_failing([DosedShot(s) for s in shots], rect_shape, spec)
        assert before > 0
        result = optimize_doses(shots, rect_shape, spec)
        assert result.failing_after < before
        assert all(s.dose > 1.0 for s in result.shots)  # dosed up

    def test_doses_stay_in_bounds(self, rect_shape, spec):
        shots = [Rect(5, 5, 55, 35)]
        result = optimize_doses(shots, rect_shape, spec, dose_bounds=(0.8, 1.3))
        assert all(0.8 <= s.dose <= 1.3 for s in result.shots)

    def test_feasible_input_stays_feasible(self, rect_shape, spec):
        shots = [Rect(-1, -1, 61, 41)]
        result = optimize_doses(shots, rect_shape, spec)
        assert result.failing_before == 0
        assert result.failing_after == 0
