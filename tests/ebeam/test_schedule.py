"""Unit tests for shot scheduling."""

import pytest

from repro.ebeam.schedule import (
    TravelModel,
    greedy_schedule,
    natural_schedule,
    schedule_time,
    travel_saving,
)
from repro.geometry.rect import Rect


def _grid_of_shots(nx: int, ny: int, pitch: float = 100.0) -> list[Rect]:
    shots = []
    for iy in range(ny):
        for ix in range(nx):
            x = ix * pitch
            y = iy * pitch
            shots.append(Rect(x, y, x + 40, y + 40))
    return shots


class TestTravelModel:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TravelModel(flash_us=0.0)
        with pytest.raises(ValueError):
            TravelModel(settle_us_per_um=-1.0)

    def test_segment_time(self):
        model = TravelModel(flash_us=10.0, settle_us_per_um=2.0)
        a = Rect(0, 0, 40, 40)
        b = Rect(1000, 0, 1040, 40)  # centres 1 µm apart
        assert model.segment_time_us(a, b) == pytest.approx(12.0)


class TestScheduleTime:
    def test_empty(self):
        assert schedule_time([], []) == (0.0, 0.0)

    def test_single_shot_flash_only(self):
        model = TravelModel(flash_us=15.0)
        total, travel = schedule_time([Rect(0, 0, 40, 40)], [0], model)
        assert total == 15.0 and travel == 0.0

    def test_additivity(self):
        shots = _grid_of_shots(3, 1)
        model = TravelModel()
        total, travel = schedule_time(shots, [0, 1, 2], model)
        assert travel == pytest.approx(200.0)
        assert total == pytest.approx(3 * model.flash_us + 0.2 * model.settle_us_per_um)


class TestGreedyOrdering:
    def test_empty_and_single(self):
        assert greedy_schedule([]).order == []
        assert greedy_schedule([Rect(0, 0, 40, 40)]).order == [0]

    def test_visits_every_shot_once(self):
        shots = _grid_of_shots(4, 3)
        schedule = greedy_schedule(shots)
        assert sorted(schedule.order) == list(range(len(shots)))

    def test_beats_scrambled_order_on_grid(self):
        """A deliberately bad input order (corner-hopping) must be
        improved substantially by nearest-neighbour ordering.  Uses a
        subfield-scale grid (2 µm pitch) where settle time matters."""
        shots = _grid_of_shots(5, 5, pitch=2000.0)
        # Interleave far-apart shots.
        scrambled = [shots[i] for i in range(0, 25, 2)] + [
            shots[i] for i in range(1, 25, 2)
        ]
        saving = travel_saving(scrambled)
        assert saving > 0.05

    def test_never_worse_than_natural(self):
        for shots in (_grid_of_shots(3, 3), _grid_of_shots(1, 7)):
            greedy = greedy_schedule(shots)
            naive = natural_schedule(shots)
            assert greedy.total_time_us <= naive.total_time_us + 1e-9

    def test_snake_order_is_respected(self):
        """On a single row the greedy order is the sweep."""
        shots = _grid_of_shots(6, 1)
        schedule = greedy_schedule(shots)
        assert schedule.order == list(range(6))

    def test_schedule_on_real_solution(self, blob_shape, spec):
        from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig

        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            blob_shape, spec
        )
        schedule = greedy_schedule(result.shots)
        assert sorted(schedule.order) == list(range(result.shot_count))
        assert schedule.total_time_us > 0.0


class TestSubfieldSchedule:
    def test_invalid_subfield(self):
        from repro.ebeam.schedule import subfield_schedule

        with pytest.raises(ValueError):
            subfield_schedule([Rect(0, 0, 40, 40)], subfield_nm=0.0)

    def test_permutation_preserved(self):
        from repro.ebeam.schedule import subfield_schedule

        shots = _grid_of_shots(6, 4, pitch=300.0)
        schedule = subfield_schedule(shots, subfield_nm=600.0)
        assert sorted(schedule.order) == list(range(len(shots)))

    def test_never_worse_than_flat_greedy(self):
        from repro.ebeam.schedule import greedy_schedule, subfield_schedule

        for pitch in (150.0, 800.0):
            shots = _grid_of_shots(5, 5, pitch=pitch)
            flat = greedy_schedule(shots)
            two_level = subfield_schedule(shots, subfield_nm=1000.0)
            assert two_level.total_time_us <= flat.total_time_us + 1e-9

    def test_empty(self):
        from repro.ebeam.schedule import subfield_schedule

        assert subfield_schedule([]).order == []
