"""Unit tests for the erf lookup table."""

import numpy as np
import pytest
from scipy.special import erf

from repro.ebeam.lut import ErfLookupTable, default_lut


class TestConstruction:
    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            ErfLookupTable(bound=0.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            ErfLookupTable(samples=1)


class TestAccuracy:
    def test_max_error_tiny(self):
        lut = ErfLookupTable()
        assert lut.max_abs_error() < 1e-7

    def test_saturation_outside_range(self):
        lut = ErfLookupTable(bound=4.0)
        assert np.isclose(lut(10.0), 1.0, atol=1e-6)
        assert np.isclose(lut(-10.0), -1.0, atol=1e-6)

    def test_odd_symmetry(self):
        lut = ErfLookupTable()
        xs = np.linspace(0, 4.5, 100)
        assert np.allclose(lut(xs), -lut(-xs), atol=1e-9)

    def test_scalar_and_array_inputs(self):
        lut = ErfLookupTable()
        assert np.isclose(float(lut(0.5)), erf(0.5), atol=1e-7)
        out = lut(np.array([[0.1, 0.2], [0.3, 0.4]]))
        assert out.shape == (2, 2)

    def test_monotone(self):
        lut = ErfLookupTable()
        xs = np.linspace(-4, 4, 1000)
        assert (np.diff(lut(xs)) >= 0).all()


class TestSharedInstance:
    def test_default_lut_is_cached(self):
        assert default_lut() is default_lut()
