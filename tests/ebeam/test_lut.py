"""Unit tests for the erf lookup table."""

import numpy as np
import pytest
from scipy.special import erf

from repro.ebeam.lut import ErfLookupTable, default_lut


class TestConstruction:
    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            ErfLookupTable(bound=0.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            ErfLookupTable(samples=1)


class TestAccuracy:
    def test_max_error_tiny(self):
        lut = ErfLookupTable()
        assert lut.max_abs_error() < 1e-7

    def test_saturation_outside_range(self):
        lut = ErfLookupTable(bound=4.0)
        assert np.isclose(lut(10.0), 1.0, atol=1e-6)
        assert np.isclose(lut(-10.0), -1.0, atol=1e-6)

    def test_odd_symmetry(self):
        lut = ErfLookupTable()
        xs = np.linspace(0, 4.5, 100)
        assert np.allclose(lut(xs), -lut(-xs), atol=1e-9)

    def test_scalar_and_array_inputs(self):
        lut = ErfLookupTable()
        assert np.isclose(float(lut(0.5)), erf(0.5), atol=1e-7)
        out = lut(np.array([[0.1, 0.2], [0.3, 0.4]]))
        assert out.shape == (2, 2)

    def test_scalar_returns_python_float(self):
        # Regression: scalar input used to come back as a 0-d ndarray,
        # which silently broke float formatting and equality in callers.
        lut = ErfLookupTable()
        for u in (0.0, -2.5, 7.0, np.float64(1.25)):
            result = lut(u)
            assert type(result) is float

    def test_upper_table_edge_interpolates_in_bounds(self):
        # Regression: an argument exactly at +bound maps to the last
        # table index; the base cell must clamp to samples - 2 so the
        # idx + 1 read stays in bounds and the value is the table edge.
        lut = ErfLookupTable(bound=3.0, samples=301)
        assert lut(3.0) == pytest.approx(float(erf(3.0)), abs=1e-9)
        arr = lut(np.array([2.99, 3.0, 3.5]))
        assert np.all(np.isfinite(arr))
        assert arr[1] == pytest.approx(float(erf(3.0)), abs=1e-9)
        assert arr[2] == pytest.approx(float(erf(3.0)), abs=1e-9)

    def test_monotone(self):
        lut = ErfLookupTable()
        xs = np.linspace(-4, 4, 1000)
        assert (np.diff(lut(xs)) >= 0).all()


class TestEvalConcat:
    def test_matches_per_array_evaluation_bitwise(self):
        lut = ErfLookupTable()
        rng = np.random.default_rng(7)
        segments = [rng.uniform(-6, 6, size=n) for n in (3, 17, 1, 64)]
        batched = lut.eval_concat(segments)
        assert len(batched) == len(segments)
        for segment, values in zip(segments, batched):
            assert values.shape == segment.shape
            assert np.array_equal(values, lut(segment))

    def test_empty_and_single_segment(self):
        lut = ErfLookupTable()
        assert lut.eval_concat([]) == []
        seg = np.linspace(-1, 1, 9)
        (values,) = lut.eval_concat([seg])
        assert np.array_equal(values, lut(seg))


class TestSharedInstance:
    def test_default_lut_is_cached(self):
        assert default_lut() is default_lut()

    def test_set_default_lut_swaps_and_restores(self):
        from repro.ebeam.lut import set_default_lut

        coarse = ErfLookupTable(samples=101)
        previous = set_default_lut(coarse)
        try:
            assert default_lut() is coarse
        finally:
            set_default_lut(previous)
        assert default_lut() is not coarse

    def test_set_default_lut_none_resets_to_lazy_default(self):
        from repro.ebeam.lut import set_default_lut

        previous = set_default_lut(None)
        try:
            fresh = default_lut()
            assert fresh is default_lut()  # re-cached
        finally:
            set_default_lut(previous)
