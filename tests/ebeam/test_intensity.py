"""Unit tests for analytic shot intensity (Eq. 1–3)."""

import numpy as np
import pytest

from repro.ebeam.intensity import (
    edge_profile,
    point_intensity,
    shot_intensity,
    shot_profile_1d,
)
from repro.ebeam.kernel import GaussianKernel
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect

SIGMA = 6.25


class TestProfile1d:
    def test_inverted_interval_raises(self):
        with pytest.raises(ValueError):
            shot_profile_1d(np.array([0.0]), 5.0, 1.0, SIGMA)

    def test_half_at_edges(self):
        xs = np.array([0.0, 60.0])
        profile = shot_profile_1d(xs, 0.0, 60.0, SIGMA)
        assert np.allclose(profile, 0.5, atol=1e-6)

    def test_one_deep_inside_zero_far_outside(self):
        xs = np.array([30.0, -40.0, 100.0])
        profile = shot_profile_1d(xs, 0.0, 60.0, SIGMA)
        assert profile[0] > 0.999
        assert profile[1] < 1e-6 and profile[2] < 1e-6

    def test_symmetry(self):
        xs = np.linspace(-10, 70, 81)
        profile = shot_profile_1d(xs, 0.0, 60.0, SIGMA)
        assert np.allclose(profile, profile[::-1], atol=1e-9)

    def test_monotone_across_single_edge(self):
        xs = np.linspace(-20, 20, 41)
        profile = shot_profile_1d(xs, 0.0, 1000.0, SIGMA)
        assert (np.diff(profile) > 0).all()


class TestShotIntensity:
    def _grid(self):
        return PixelGrid(-30.0, -30.0, 1.0, 120, 120)

    def test_separability(self):
        grid = self._grid()
        shot = Rect(0, 0, 40, 25)
        full = shot_intensity(shot, grid, SIGMA)
        fx = shot_profile_1d(grid.x_centers(), 0, 40, SIGMA)
        fy = shot_profile_1d(grid.y_centers(), 0, 25, SIGMA)
        assert np.allclose(full, np.outer(fy, fx), atol=1e-9)

    def test_window_matches_full(self):
        grid = self._grid()
        shot = Rect(0, 0, 40, 25)
        window = grid.rect_to_slices(shot, margin=25.0)
        patch = shot_intensity(shot, grid, SIGMA, window)
        full = shot_intensity(shot, grid, SIGMA)
        assert np.allclose(patch, full[window], atol=1e-12)

    def test_matches_numeric_convolution(self):
        """Analytic erf form equals brute-force kernel convolution."""
        from scipy.signal import fftconvolve

        grid = PixelGrid(-25.0, -25.0, 0.5, 200, 200)
        shot = Rect(0.0, 0.0, 30.0, 20.0)
        analytic = shot_intensity(shot, grid, SIGMA)
        indicator = (
            (grid.x_centers()[None, :] >= shot.xbl)
            & (grid.x_centers()[None, :] <= shot.xtr)
            & (grid.y_centers()[:, None] >= shot.ybl)
            & (grid.y_centers()[:, None] <= shot.ytr)
        ).astype(float)
        kernel = GaussianKernel(SIGMA, truncation=5.0).discretized(0.5)
        numeric = fftconvolve(indicator, kernel, mode="same") * 0.5**2
        # Pixel-center vs cell-edge discretization differs by O(pitch).
        assert np.max(np.abs(analytic - numeric)) < 0.03

    def test_peak_at_center(self):
        grid = self._grid()
        shot = Rect(10, 10, 50, 40)
        intensity = shot_intensity(shot, grid, SIGMA)
        iy, ix = np.unravel_index(intensity.argmax(), intensity.shape)
        center = grid.pixel_center(int(iy), int(ix))
        assert abs(center.x - 30.0) <= 1.0 and abs(center.y - 25.0) <= 1.0


class TestPointIntensity:
    def test_additivity(self):
        shots = [Rect(0, 0, 20, 20), Rect(10, 0, 30, 20)]
        total = point_intensity(shots, 15.0, 10.0, SIGMA)
        parts = sum(point_intensity([s], 15.0, 10.0, SIGMA) for s in shots)
        assert np.isclose(total, parts)

    def test_corner_of_quarter_plane(self):
        # At the exact corner of a large shot the intensity is 0.25.
        value = point_intensity([Rect(0, 0, 1000, 1000)], 0.0, 0.0, SIGMA)
        assert np.isclose(value, 0.25, atol=1e-6)

    def test_agrees_with_grid_evaluation(self):
        grid = PixelGrid(0.0, 0.0, 1.0, 50, 50)
        shot = Rect(5, 5, 35, 30)
        field = shot_intensity(shot, grid, SIGMA)
        exact = point_intensity([shot], 20.5, 20.5, SIGMA)
        assert np.isclose(field[20, 20], exact, atol=1e-6)


class TestEdgeProfile:
    def test_half_at_edge(self):
        assert np.isclose(edge_profile(0.0, SIGMA), 0.5)

    def test_limits(self):
        assert edge_profile(30.0, SIGMA) > 0.9999
        assert edge_profile(-30.0, SIGMA) < 1e-4

    def test_matches_profile_limit(self):
        xs = np.linspace(-15, 15, 31)
        half_infinite = shot_profile_1d(xs, -1e6, 0.0, SIGMA)
        step = edge_profile(-xs, SIGMA)
        assert np.allclose(half_infinite, step, atol=1e-9)
