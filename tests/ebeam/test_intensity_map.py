"""Unit tests for the incremental intensity map."""

import numpy as np
import pytest

from repro.ebeam.intensity import shot_intensity
from repro.ebeam.intensity_map import IntensityMap
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect

SIGMA = 6.25


@pytest.fixture()
def grid() -> PixelGrid:
    return PixelGrid(0.0, 0.0, 1.0, 100, 100)


@pytest.fixture()
def imap(grid) -> IntensityMap:
    return IntensityMap(grid, SIGMA)


class TestAddRemove:
    def test_invalid_sigma(self, grid):
        with pytest.raises(ValueError):
            IntensityMap(grid, 0.0)

    def test_add_matches_direct_evaluation(self, imap, grid):
        shot = Rect(20, 20, 60, 50)
        imap.add(shot)
        direct = shot_intensity(shot, grid, SIGMA)
        assert np.max(np.abs(imap.total - direct)) < 1e-7

    def test_add_then_remove_is_identity(self, imap):
        shot = Rect(20, 20, 60, 50)
        imap.add(shot)
        imap.remove(shot)
        assert np.max(np.abs(imap.total)) < 1e-12

    def test_additivity_of_two_shots(self, imap, grid):
        a, b = Rect(10, 10, 40, 40), Rect(30, 30, 70, 70)
        imap.add(a)
        imap.add(b)
        direct = shot_intensity(a, grid, SIGMA) + shot_intensity(b, grid, SIGMA)
        assert np.max(np.abs(imap.total - direct)) < 1e-7


class TestReplaceAndRebuild:
    def test_replace_equals_remove_add(self, grid):
        old, new = Rect(20, 20, 50, 50), Rect(21, 20, 50, 50)
        a = IntensityMap(grid, SIGMA)
        a.add(old)
        a.replace(old, new)
        b = IntensityMap(grid, SIGMA)
        b.add(new)
        assert np.max(np.abs(a.total - b.total)) < 1e-7

    def test_incremental_drift_bounded(self, grid):
        """Hundreds of incremental updates stay within float tolerance of
        a from-scratch rebuild (the 4σ reach guarantee)."""
        rng = np.random.default_rng(2)
        imap = IntensityMap(grid, SIGMA)
        shots = []
        for _ in range(30):
            x0, y0 = rng.uniform(5, 60, 2)
            shot = Rect(x0, y0, x0 + rng.uniform(10, 30), y0 + rng.uniform(10, 30))
            shots.append(shot)
            imap.add(shot)
        for _ in range(200):
            index = int(rng.integers(len(shots)))
            moved = shots[index].translated(rng.uniform(-1, 1), rng.uniform(-1, 1))
            imap.replace(shots[index], moved)
            shots[index] = moved
        reference = IntensityMap(grid, SIGMA)
        reference.rebuild(shots)
        assert np.max(np.abs(imap.total - reference.total)) < 1e-6

    def test_rebuild_clears_previous_state(self, imap):
        imap.add(Rect(10, 10, 30, 30))
        imap.rebuild([Rect(50, 50, 80, 80)])
        assert imap.total[20, 20] < 1e-6
        assert imap.total[65, 65] > 0.9


class TestCandidateEvaluation:
    def test_candidate_total_matches_committed(self, imap):
        old = Rect(20, 20, 50, 50)
        new = Rect(20, 20, 51, 50)
        imap.add(old)
        window, hypothetical = imap.candidate_total(old, new)
        imap.replace(old, new)
        assert np.max(np.abs(hypothetical - imap.total[window])) < 1e-9

    def test_edge_move_delta_matches_full_difference(self, imap, grid):
        old = Rect(20, 20, 50, 50)
        new = old.moved_edge("right", 1.0)
        imap.add(old)
        window, delta = imap.edge_move_delta(old, new, "right")
        before = imap.total[window].copy()
        imap.replace(old, new)
        assert np.max(np.abs((before + delta) - imap.total[window])) < 1e-9

    def test_edge_move_window_is_narrow(self, imap):
        old = Rect(20, 20, 80, 80)
        new = old.moved_edge("left", 1.0)
        ys, xs = imap.edge_move_window(old, new, "left")
        full_ys, full_xs = imap.window_of(old)
        assert (xs.stop - xs.start) < (full_xs.stop - full_xs.start)

    def test_vertical_edge_delta(self, imap):
        old = Rect(20, 20, 50, 50)
        new = old.moved_edge("top", -1.0)
        imap.add(old)
        window, delta = imap.edge_move_delta(old, new, "top")
        assert delta.max() <= 1e-12  # shrinking only removes dose
        assert delta.min() < -1e-4


class TestCopy:
    def test_copy_is_independent(self, imap):
        imap.add(Rect(10, 10, 40, 40))
        clone = imap.copy()
        clone.add(Rect(50, 50, 80, 80))
        assert imap.total[65, 65] < 1e-6
        assert clone.total[65, 65] > 0.9
