"""Unit tests for the full ModelBasedFracturer pipeline."""

import pytest

from repro.fracture.graph_color import GraphBuildConfig
from repro.fracture.pipeline import (
    DEFAULT_PORTFOLIO,
    ModelBasedFracturer,
    RefineConfig,
)
from repro.fracture.refine import RefineParams


class TestConfig:
    def test_factory_presets(self):
        assert RefineConfig.fast().params.nmax < RefineConfig().params.nmax
        assert RefineConfig.thorough().params.nmax > RefineConfig().params.nmax
        assert not RefineConfig.paper_faithful().polish

    def test_config_and_portfolio_exclusive(self):
        with pytest.raises(ValueError):
            ModelBasedFracturer(
                config=RefineConfig(), portfolio=DEFAULT_PORTFOLIO
            )

    def test_single_config_mode(self):
        f = ModelBasedFracturer(config=RefineConfig.fast())
        assert len(f.portfolio) == 1


class TestFracturing:
    def test_rectangle_is_one_shot(self, rect_shape, spec):
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            rect_shape, spec
        )
        assert result.feasible
        assert result.shot_count == 1

    def test_l_shape_feasible(self, l_shape, spec):
        result = ModelBasedFracturer(config=RefineConfig()).fracture(l_shape, spec)
        assert result.feasible
        assert result.shot_count <= 6

    def test_blob_feasible_with_portfolio(self, blob_shape, spec):
        result = ModelBasedFracturer().fracture(blob_shape, spec)
        assert result.feasible
        assert result.shot_count >= 1

    def test_min_size_constraint_always_met(self, blob_shape, spec):
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            blob_shape, spec
        )
        assert all(s.meets_min_size(spec.lmin - 1e-9) for s in result.shots)

    def test_extra_diagnostics_populated(self, rect_shape, spec):
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            rect_shape, spec
        )
        for key in ("corner_points", "refine_iterations", "runs"):
            assert key in result.extra

    def test_portfolio_stops_early_when_feasible(self, rect_shape, spec):
        result = ModelBasedFracturer().fracture(rect_shape, spec)
        assert len(result.extra["runs"]) == 2  # _MIN_RUNS, then early stop

    def test_polish_disabled_is_paper_faithful(self, rect_shape, spec):
        config = RefineConfig(
            graph=GraphBuildConfig(),
            params=RefineParams(nmax=150),
            polish=False,
        )
        result = ModelBasedFracturer(config=config).fracture(rect_shape, spec)
        assert result.extra["polished_away"] == 0
