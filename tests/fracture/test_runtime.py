"""Unit tests for the fault-tolerant tile execution layer.

Fast by construction: stub tiles and a stub inner fracturer make every
``run_tiles`` call a few milliseconds, so retry/backoff/fallback/journal
logic is exercised without real fracturing.
"""

import json

import pytest

from repro.fracture.runtime import (
    CheckpointJournal,
    CheckpointMismatch,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    RetryPolicy,
    TileCrash,
    TileError,
    TileInfeasible,
    TileOutcome,
    TileTimeout,
    run_tiles,
)
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec


class StubTile:
    """Minimal tile: a name and an accept-everything ownership rule."""

    def __init__(self, name: str):
        self.name = name

    def owns(self, x: float, y: float) -> bool:
        return True


class StubInner:
    """Inner fracturer stub: one fixed shot per sub-shape."""

    name = "STUB"

    def fracture_shots(self, sub, spec):
        return [Rect(0.0, 0.0, 10.0, 10.0)]


def _jobs(n: int = 3, subs_per_tile: int = 1):
    return [
        (StubTile(f"t{i},0"), [object()] * subs_per_tile) for i in range(n)
    ]


def _fast_retry(**overrides) -> RetryPolicy:
    defaults = dict(max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _stub_fallback(tile, subs, spec):
    return [Rect(1.0, 1.0, 2.0, 2.0)]


SPEC = FractureSpec()


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0, backoff_cap_s=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)


class TestErrorTaxonomy:
    def test_tile_errors_carry_identity(self):
        for cls in (TileCrash, TileTimeout, TileInfeasible):
            error = cls("t3,7", "boom")
            assert isinstance(error, TileError)
            assert error.tile_name == "t3,7"
            assert "t3,7" in str(error)


class TestFaultPlan:
    def test_parse_variants(self):
        plan = FaultPlan.parse(["t0,0:crash", "t1,2:raise:2", "t2,0:hang"])
        assert plan.faults["t0,0"] == FaultSpec("crash", 1)
        assert plan.faults["t1,2"] == FaultSpec("raise", 2)
        assert plan.faults["t2,0"] == FaultSpec("hang", 1)

    @pytest.mark.parametrize("bad", ["", "t0,0", "t0,0:explode", ":crash"])
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse([bad])

    def test_seeded_is_deterministic(self):
        names = [f"t{i},0" for i in range(20)]
        a = FaultPlan.seeded(names, seed=7, fraction=0.4)
        b = FaultPlan.seeded(names, seed=7, fraction=0.4)
        assert a.faults == b.faults
        assert set(a.faults) <= set(names)

    def test_fire_arms_per_attempt(self):
        plan = FaultPlan(faults={"t0,0": FaultSpec("raise", 2)})
        with pytest.raises(InjectedFault):
            plan.fire("t0,0", attempt=1, inline=True)
        with pytest.raises(InjectedFault):
            plan.fire("t0,0", attempt=2, inline=True)
        plan.fire("t0,0", attempt=3, inline=True)  # disarmed
        plan.fire("t9,9", attempt=1, inline=True)  # unnamed tile: no-op

    def test_inline_crash_and_hang_are_simulated(self):
        plan = FaultPlan(faults={"a": FaultSpec("crash"), "b": FaultSpec("hang")})
        with pytest.raises(InjectedCrash):
            plan.fire("a", attempt=1, inline=True)
        with pytest.raises(InjectedHang):
            plan.fire("b", attempt=1, inline=True)


class TestCheckpointJournal:
    RUN_KEY = {"shape": "s", "window_nm": 100.0}

    def _outcome(self, idx=0, name="t0,0", fallback=False):
        return TileOutcome(
            index=idx, tile_name=name, ok=True,
            shots=[Rect(0.25, 0.5, 10.125, 20.0625)],
            attempts=2, fallback=fallback,
        )

    def test_roundtrip_replays_exact_shots(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY)
        journal.record(self._outcome())
        resumed = CheckpointJournal.open(path, self.RUN_KEY, resume=True)
        replayed = resumed.replay(0, "t0,0")
        assert replayed is not None
        assert replayed.replayed
        assert replayed.shots == [Rect(0.25, 0.5, 10.125, 20.0625)]
        assert replayed.attempts == 2
        assert resumed.replay(1, "t1,0") is None

    def test_fallback_flag_survives_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY)
        journal.record(self._outcome(fallback=True))
        resumed = CheckpointJournal.open(path, self.RUN_KEY, resume=True)
        assert resumed.replay(0, "t0,0").fallback

    def test_partial_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY)
        journal.record(self._outcome())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "tile", "tile": "t1,0", "sho')  # torn write
        resumed = CheckpointJournal.open(path, self.RUN_KEY, resume=True)
        assert set(resumed.completed) == {"t0,0"}

    def test_run_key_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal.open(path, self.RUN_KEY)
        with pytest.raises(CheckpointMismatch):
            CheckpointJournal.open(
                path, {"shape": "s", "window_nm": 200.0}, resume=True
            )

    def test_open_without_resume_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY)
        journal.record(self._outcome())
        fresh = CheckpointJournal.open(path, self.RUN_KEY, resume=False)
        assert not fresh.completed
        assert len(path.read_text().splitlines()) == 1  # header only

    def test_resume_with_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "new.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY, resume=True)
        assert not journal.completed
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"


class TestRunTilesSerial:
    def test_clean_run_in_job_order(self):
        outcomes, stats = run_tiles(
            _jobs(3), inner=StubInner(), spec=SPEC, retry=_fast_retry()
        )
        assert [o.tile_name for o in outcomes] == ["t0,0", "t1,0", "t2,0"]
        assert all(o.ok and not o.fallback for o in outcomes)
        assert stats.as_dict() == {
            "tile_retries": 0, "tile_timeouts": 0, "pool_respawns": 0,
            "tile_fallbacks": 0, "tiles_replayed": 0,
        }

    def test_injected_raise_is_retried_then_succeeds(self):
        outcomes, stats = run_tiles(
            _jobs(3), inner=StubInner(), spec=SPEC, retry=_fast_retry(),
            fault_plan=FaultPlan(faults={"t1,0": FaultSpec("raise", 1)}),
        )
        assert all(o.ok and not o.fallback for o in outcomes)
        assert outcomes[1].attempts == 2
        assert stats.tile_retries == 1

    def test_inline_hang_counts_as_timeout(self):
        outcomes, stats = run_tiles(
            _jobs(2), inner=StubInner(), spec=SPEC, retry=_fast_retry(),
            fault_plan=FaultPlan(faults={"t0,0": FaultSpec("hang", 1)}),
        )
        assert all(o.ok for o in outcomes)
        assert stats.tile_timeouts == 1
        assert stats.tile_retries == 1

    def test_exhausted_retries_degrade_to_fallback(self):
        outcomes, stats = run_tiles(
            _jobs(3, subs_per_tile=2), inner=StubInner(), spec=SPEC,
            retry=_fast_retry(max_attempts=2),
            fault_plan=FaultPlan(faults={"t2,0": FaultSpec("raise", 99)}),
            fallback=_stub_fallback,
        )
        assert outcomes[2].fallback
        assert outcomes[2].shots == [Rect(1.0, 1.0, 2.0, 2.0)]
        # The enriched error keeps tile identity and sub-shape count.
        assert "t2,0" in outcomes[2].error
        assert "2 sub-shapes" in outcomes[2].error
        assert stats.tile_fallbacks == 1
        assert stats.tile_retries == 1
        # The healthy tiles are untouched.
        assert not outcomes[0].fallback and not outcomes[1].fallback

    def test_zero_retries_goes_straight_to_fallback(self):
        outcomes, stats = run_tiles(
            _jobs(1), inner=StubInner(), spec=SPEC,
            retry=_fast_retry(max_attempts=1),
            fault_plan=FaultPlan(faults={"t0,0": FaultSpec("raise", 1)}),
            fallback=_stub_fallback,
        )
        assert outcomes[0].fallback
        assert stats.tile_retries == 0

    def test_journal_resume_skips_completed_tiles(self, tmp_path):
        run_key = {"k": 1}
        journal = CheckpointJournal.open(tmp_path / "j.jsonl", run_key)
        first, _ = run_tiles(
            _jobs(3), inner=StubInner(), spec=SPEC, retry=_fast_retry(),
            journal=journal,
        )
        resumed_journal = CheckpointJournal.open(
            tmp_path / "j.jsonl", run_key, resume=True
        )
        second, stats = run_tiles(
            _jobs(3), inner=StubInner(), spec=SPEC, retry=_fast_retry(),
            journal=resumed_journal,
        )
        assert stats.tiles_replayed == 3
        assert [o.shots for o in second] == [o.shots for o in first]
        assert all(o.replayed for o in second)

    def test_outcome_record_shape(self):
        outcomes, _stats = run_tiles(
            _jobs(1), inner=StubInner(), spec=SPEC, retry=_fast_retry()
        )
        record = outcomes[0].to_record()
        assert record == {
            "tile": "t0,0", "ok": True, "attempts": 1, "shots": 1,
            "fallback": False, "replayed": False,
        }
