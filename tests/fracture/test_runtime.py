"""Unit tests for the fault-tolerant tile execution layer.

Fast by construction: stub tiles and a stub inner fracturer make every
``run_tiles`` call a few milliseconds, so retry/backoff/fallback/journal
logic is exercised without real fracturing.
"""

import json

import pytest

from repro.fracture.runtime import (
    CheckpointJournal,
    CheckpointMismatch,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    RetryPolicy,
    TileCrash,
    TileError,
    TileInfeasible,
    TileOutcome,
    TileTimeout,
    run_tiles,
)
from repro.geometry.rect import Rect
from repro.mask.constraints import FractureSpec


class StubTile:
    """Minimal tile: a name and an accept-everything ownership rule."""

    def __init__(self, name: str):
        self.name = name

    def owns(self, x: float, y: float) -> bool:
        return True


class StubInner:
    """Inner fracturer stub: one fixed shot per sub-shape."""

    name = "STUB"

    def fracture_shots(self, sub, spec):
        return [Rect(0.0, 0.0, 10.0, 10.0)]


def _jobs(n: int = 3, subs_per_tile: int = 1):
    return [
        (StubTile(f"t{i},0"), [object()] * subs_per_tile) for i in range(n)
    ]


def _fast_retry(**overrides) -> RetryPolicy:
    defaults = dict(max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _stub_fallback(tile, subs, spec):
    return [Rect(1.0, 1.0, 2.0, 2.0)]


SPEC = FractureSpec()


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0, backoff_cap_s=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)


class TestErrorTaxonomy:
    def test_tile_errors_carry_identity(self):
        for cls in (TileCrash, TileTimeout, TileInfeasible):
            error = cls("t3,7", "boom")
            assert isinstance(error, TileError)
            assert error.tile_name == "t3,7"
            assert "t3,7" in str(error)


class TestFaultPlan:
    def test_parse_variants(self):
        plan = FaultPlan.parse(["t0,0:crash", "t1,2:raise:2", "t2,0:hang"])
        assert plan.faults["t0,0"] == FaultSpec("crash", 1)
        assert plan.faults["t1,2"] == FaultSpec("raise", 2)
        assert plan.faults["t2,0"] == FaultSpec("hang", 1)

    @pytest.mark.parametrize("bad", ["", "t0,0", "t0,0:explode", ":crash"])
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse([bad])

    def test_seeded_is_deterministic(self):
        names = [f"t{i},0" for i in range(20)]
        a = FaultPlan.seeded(names, seed=7, fraction=0.4)
        b = FaultPlan.seeded(names, seed=7, fraction=0.4)
        assert a.faults == b.faults
        assert set(a.faults) <= set(names)

    def test_fire_arms_per_attempt(self):
        plan = FaultPlan(faults={"t0,0": FaultSpec("raise", 2)})
        with pytest.raises(InjectedFault):
            plan.fire("t0,0", attempt=1, inline=True)
        with pytest.raises(InjectedFault):
            plan.fire("t0,0", attempt=2, inline=True)
        plan.fire("t0,0", attempt=3, inline=True)  # disarmed
        plan.fire("t9,9", attempt=1, inline=True)  # unnamed tile: no-op

    def test_inline_crash_and_hang_are_simulated(self):
        plan = FaultPlan(faults={"a": FaultSpec("crash"), "b": FaultSpec("hang")})
        with pytest.raises(InjectedCrash):
            plan.fire("a", attempt=1, inline=True)
        with pytest.raises(InjectedHang):
            plan.fire("b", attempt=1, inline=True)


class TestCheckpointJournal:
    RUN_KEY = {"shape": "s", "window_nm": 100.0}

    def _outcome(self, idx=0, name="t0,0", fallback=False):
        return TileOutcome(
            index=idx, tile_name=name, ok=True,
            shots=[Rect(0.25, 0.5, 10.125, 20.0625)],
            attempts=2, fallback=fallback,
        )

    def test_roundtrip_replays_exact_shots(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY)
        journal.record(self._outcome())
        resumed = CheckpointJournal.open(path, self.RUN_KEY, resume=True)
        replayed = resumed.replay(0, "t0,0")
        assert replayed is not None
        assert replayed.replayed
        assert replayed.shots == [Rect(0.25, 0.5, 10.125, 20.0625)]
        assert replayed.attempts == 2
        assert resumed.replay(1, "t1,0") is None

    def test_fallback_flag_survives_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY)
        journal.record(self._outcome(fallback=True))
        resumed = CheckpointJournal.open(path, self.RUN_KEY, resume=True)
        assert resumed.replay(0, "t0,0").fallback

    def test_partial_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY)
        journal.record(self._outcome())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "tile", "tile": "t1,0", "sho')  # torn write
        resumed = CheckpointJournal.open(path, self.RUN_KEY, resume=True)
        assert set(resumed.completed) == {"t0,0"}

    def test_run_key_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal.open(path, self.RUN_KEY)
        with pytest.raises(CheckpointMismatch):
            CheckpointJournal.open(
                path, {"shape": "s", "window_nm": 200.0}, resume=True
            )

    def test_open_without_resume_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY)
        journal.record(self._outcome())
        fresh = CheckpointJournal.open(path, self.RUN_KEY, resume=False)
        assert not fresh.completed
        assert len(path.read_text().splitlines()) == 1  # header only

    def test_resume_with_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "new.jsonl"
        journal = CheckpointJournal.open(path, self.RUN_KEY, resume=True)
        assert not journal.completed
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"


class TestRunTilesSerial:
    def test_clean_run_in_job_order(self):
        outcomes, stats = run_tiles(
            _jobs(3), inner=StubInner(), spec=SPEC, retry=_fast_retry()
        )
        assert [o.tile_name for o in outcomes] == ["t0,0", "t1,0", "t2,0"]
        assert all(o.ok and not o.fallback for o in outcomes)
        assert stats.as_dict() == {
            "tile_retries": 0, "tile_timeouts": 0, "pool_respawns": 0,
            "tile_fallbacks": 0, "tiles_replayed": 0,
        }

    def test_injected_raise_is_retried_then_succeeds(self):
        outcomes, stats = run_tiles(
            _jobs(3), inner=StubInner(), spec=SPEC, retry=_fast_retry(),
            fault_plan=FaultPlan(faults={"t1,0": FaultSpec("raise", 1)}),
        )
        assert all(o.ok and not o.fallback for o in outcomes)
        assert outcomes[1].attempts == 2
        assert stats.tile_retries == 1

    def test_inline_hang_counts_as_timeout(self):
        outcomes, stats = run_tiles(
            _jobs(2), inner=StubInner(), spec=SPEC, retry=_fast_retry(),
            fault_plan=FaultPlan(faults={"t0,0": FaultSpec("hang", 1)}),
        )
        assert all(o.ok for o in outcomes)
        assert stats.tile_timeouts == 1
        assert stats.tile_retries == 1

    def test_exhausted_retries_degrade_to_fallback(self):
        outcomes, stats = run_tiles(
            _jobs(3, subs_per_tile=2), inner=StubInner(), spec=SPEC,
            retry=_fast_retry(max_attempts=2),
            fault_plan=FaultPlan(faults={"t2,0": FaultSpec("raise", 99)}),
            fallback=_stub_fallback,
        )
        assert outcomes[2].fallback
        assert outcomes[2].shots == [Rect(1.0, 1.0, 2.0, 2.0)]
        # The enriched error keeps tile identity and sub-shape count.
        assert "t2,0" in outcomes[2].error
        assert "2 sub-shapes" in outcomes[2].error
        assert stats.tile_fallbacks == 1
        assert stats.tile_retries == 1
        # The healthy tiles are untouched.
        assert not outcomes[0].fallback and not outcomes[1].fallback

    def test_zero_retries_goes_straight_to_fallback(self):
        outcomes, stats = run_tiles(
            _jobs(1), inner=StubInner(), spec=SPEC,
            retry=_fast_retry(max_attempts=1),
            fault_plan=FaultPlan(faults={"t0,0": FaultSpec("raise", 1)}),
            fallback=_stub_fallback,
        )
        assert outcomes[0].fallback
        assert stats.tile_retries == 0

    def test_journal_resume_skips_completed_tiles(self, tmp_path):
        run_key = {"k": 1}
        journal = CheckpointJournal.open(tmp_path / "j.jsonl", run_key)
        first, _ = run_tiles(
            _jobs(3), inner=StubInner(), spec=SPEC, retry=_fast_retry(),
            journal=journal,
        )
        resumed_journal = CheckpointJournal.open(
            tmp_path / "j.jsonl", run_key, resume=True
        )
        second, stats = run_tiles(
            _jobs(3), inner=StubInner(), spec=SPEC, retry=_fast_retry(),
            journal=resumed_journal,
        )
        assert stats.tiles_replayed == 3
        assert [o.shots for o in second] == [o.shots for o in first]
        assert all(o.replayed for o in second)

    def test_outcome_record_shape(self):
        outcomes, _stats = run_tiles(
            _jobs(1), inner=StubInner(), spec=SPEC, retry=_fast_retry()
        )
        record = outcomes[0].to_record()
        assert record == {
            "tile": "t0,0", "ok": True, "attempts": 1, "shots": 1,
            "fallback": False, "replayed": False,
        }


class TestProgressTelemetry:
    def test_progress_events_count_up_with_eta(self):
        import repro.obs as obs

        rec = obs.TelemetryRecorder()
        with obs.recording(rec):
            run_tiles(_jobs(4), inner=StubInner(), spec=SPEC,
                      retry=_fast_retry())
        progress = [e for e in rec.events if e["name"] == "progress"]
        assert [e["tiles_done"] for e in progress] == [1, 2, 3, 4]
        assert all(e["tiles_total"] == 4 for e in progress)
        assert progress[-1]["shots"] == 4
        assert progress[-1]["tile_wall_ewma_s"] >= 0.0
        # The last tile has nothing remaining, so no ETA; earlier ones
        # carry a non-negative estimate.
        assert "eta_s" not in progress[-1]
        assert all(e["eta_s"] >= 0.0 for e in progress[:-1])
        assert rec.gauges["windowed.tiles_done"] == 4
        assert rec.gauges["windowed.shots_done"] == 4

    def test_replayed_tiles_count_as_done_up_front(self, tmp_path):
        import repro.obs as obs

        run_key = {"k": 1}
        journal = CheckpointJournal.open(tmp_path / "j.jsonl", run_key)
        run_tiles(_jobs(3), inner=StubInner(), spec=SPEC,
                  retry=_fast_retry(), journal=journal)
        resumed = CheckpointJournal.open(
            tmp_path / "j.jsonl", run_key, resume=True
        )
        rec = obs.TelemetryRecorder()
        with obs.recording(rec):
            run_tiles(_jobs(4), inner=StubInner(), spec=SPEC,
                      retry=_fast_retry(), journal=resumed)
        progress = [e for e in rec.events if e["name"] == "progress"]
        # Only the one fresh tile produces a progress event, starting
        # from the replayed baseline of 3.
        assert [e["tiles_done"] for e in progress] == [4]

    def test_fallback_tiles_still_advance_progress(self):
        import repro.obs as obs

        rec = obs.TelemetryRecorder()
        with obs.recording(rec):
            run_tiles(
                _jobs(2), inner=StubInner(), spec=SPEC,
                retry=_fast_retry(max_attempts=1),
                fault_plan=FaultPlan(faults={"t0,0": FaultSpec("raise", 1)}),
                fallback=_stub_fallback,
            )
        progress = [e for e in rec.events if e["name"] == "progress"]
        assert [e["tiles_done"] for e in progress] == [1, 2]


class TestHeartbeatIntegration:
    def test_pooled_outcomes_carry_worker_pid(self):
        import os

        outcomes, _stats = run_tiles(
            _jobs(4), inner=StubInner(), spec=SPEC, workers=2,
            retry=_fast_retry(),
        )
        pids = {o.worker_pid for o in outcomes}
        assert None not in pids
        assert os.getpid() not in pids  # pool workers, not the parent
        assert all("worker_pid" in o.to_record() for o in outcomes)

    def test_heartbeats_fold_into_events_and_gauges(self):
        import time

        import repro.obs as obs

        class SlowInner(StubInner):
            def fracture_shots(self, sub, spec):
                time.sleep(0.05)
                return super().fracture_shots(sub, spec)

        rec = obs.TelemetryRecorder()
        with obs.recording(rec):
            outcomes, _stats = run_tiles(
                _jobs(8), inner=SlowInner(), spec=SPEC, workers=2,
                retry=_fast_retry(), heartbeat_s=0.05,
            )
        assert all(o.ok for o in outcomes)
        beats = [e for e in rec.events if e["name"] == "worker_heartbeat"]
        assert beats, "heartbeat events must reach the parent recorder"
        assert all("rss_bytes" in b and "cpu_s" in b for b in beats)
        assert rec.gauges.get("windowed.workers_alive", 0) >= 1

    def test_hang_is_flagged_as_slow_task_before_deadline(self):
        import repro.obs as obs

        rec = obs.TelemetryRecorder()
        with obs.recording(rec):
            outcomes, stats = run_tiles(
                _jobs(3), inner=StubInner(), spec=SPEC, workers=2,
                retry=_fast_retry(tile_deadline_s=2.0),
                fault_plan=FaultPlan(
                    faults={"t1,0": FaultSpec("hang", 1)}, hang_s=60.0
                ),
                heartbeat_s=0.1,
            )
        assert all(o.ok for o in outcomes)
        assert stats.tile_timeouts == 1
        stalls = [e for e in rec.events if e["name"] == "worker_stalled"]
        # The stall alarm fires at half the deadline — before the
        # deadline kill rescues the tile.
        assert stalls and stalls[0]["kind"] == "slow_task"
        assert stalls[0]["tile"] == "t1,0"
        assert stalls[0]["age_s"] < 2.0
        assert rec.counters["windowed.worker_stalls"] >= 1

    def test_merged_shots_identical_with_and_without_observability(
        self, tmp_path
    ):
        import repro.obs as obs

        baseline, _ = run_tiles(
            _jobs(6), inner=StubInner(), spec=SPEC, retry=_fast_retry()
        )
        stream = obs.TelemetryStream(tmp_path / "s.jsonl")
        rec = obs.TelemetryRecorder(stream=stream)
        with obs.recording(rec):
            observed, _ = run_tiles(
                _jobs(6), inner=StubInner(), spec=SPEC, workers=2,
                retry=_fast_retry(), telemetry_enabled=True,
                heartbeat_s=0.05,
            )
        stream.close()
        assert [o.shots for o in observed] == [o.shots for o in baseline]
