"""Unit tests for windowed (divide-and-stitch) fracturing."""

import numpy as np
import pytest

from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.fracture.refine import RefineParams
from repro.fracture.windowed import WindowedFracturer
from repro.geometry.labeling import label_components
from repro.geometry.raster import PixelGrid
from repro.mask.shape import MaskShape


@pytest.fixture(scope="module")
def long_bar(spec_module):
    """A wavy bar ~3 windows wide."""
    from scipy.ndimage import gaussian_filter

    from repro.bench.shapes import _largest_component, _mrc_clean

    rng = np.random.default_rng(4)
    grid = PixelGrid(0.0, 0.0, 1.0, 700, 150)
    field = np.zeros(grid.shape)
    field[55:100, 40:660] = 1.0
    noise = gaussian_filter(rng.standard_normal(grid.shape), 7.0)
    noise /= np.abs(noise).max()
    mask = (gaussian_filter(field, 8.0) + 0.3 * noise) > 0.42
    mask = _largest_component(_mrc_clean(mask, 8, 5))
    return MaskShape.from_mask(mask, grid, name="long-bar")


@pytest.fixture(scope="module")
def spec_module():
    from repro.mask.constraints import FractureSpec

    return FractureSpec()


def _inner() -> ModelBasedFracturer:
    return ModelBasedFracturer(
        config=RefineConfig(params=RefineParams(nmax=300, nh=3))
    )


class TestWindowedFracturer:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedFracturer(_inner(), window_nm=0.0)

    def test_small_shape_delegates(self, rect_shape, spec):
        windowed = WindowedFracturer(_inner(), window_nm=300.0)
        result = windowed.fracture(rect_shape, spec)
        assert result.extra["slabs"] == 1
        assert result.feasible

    def test_large_shape_decomposed(self, long_bar, spec_module):
        windowed = WindowedFracturer(
            _inner(), window_nm=250.0,
            stitch_params=RefineParams(nmax=300, nh=3),
        )
        result = windowed.fracture(long_bar, spec_module)
        assert result.extra["slabs"] >= 2
        assert result.shot_count >= 3
        # Stitching must leave at most a sliver of the seams unresolved.
        pixels = long_bar.pixels(spec_module.gamma)
        assert result.report.total_failing <= 0.01 * pixels.count_on

    def test_stitching_improves_on_raw_union(self, long_bar, spec_module):
        """The seam-repair pass must strictly help: compare the stitched
        result against the raw slab-shot union."""
        from repro.mask.constraints import check_solution

        inner = _inner()
        windowed = WindowedFracturer(
            inner, window_nm=250.0, stitch_params=RefineParams(nmax=0)
        )
        raw = windowed.fracture(long_bar, spec_module)
        stitched = WindowedFracturer(
            inner, window_nm=250.0,
            stitch_params=RefineParams(nmax=300, nh=3),
        ).fracture(long_bar, spec_module)
        assert (
            stitched.report.total_failing <= raw.report.total_failing
        )

    def test_every_shot_owned_once(self, long_bar, spec_module):
        """No duplicate shots from overlapping halos."""
        windowed = WindowedFracturer(
            _inner(), window_nm=250.0, stitch_params=RefineParams(nmax=0)
        )
        shots = windowed.fracture_shots(long_bar, spec_module)
        keys = [tuple(round(c, 3) for c in s.as_tuple()) for s in shots]
        assert len(keys) == len(set(keys))
