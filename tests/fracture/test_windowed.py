"""Unit tests for tiled (divide-and-stitch) fracturing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.fracture.refine import RefineParams
from repro.fracture.windowed import LegacyWindowedFracturer, WindowedFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.raster import PixelGrid
from repro.mask.shape import MaskShape


@pytest.fixture(scope="module")
def long_bar(spec_module):
    """A wavy bar ~3 windows wide."""
    from scipy.ndimage import gaussian_filter

    from repro.bench.shapes import _largest_component, _mrc_clean

    rng = np.random.default_rng(4)
    grid = PixelGrid(0.0, 0.0, 1.0, 700, 150)
    field = np.zeros(grid.shape)
    field[55:100, 40:660] = 1.0
    noise = gaussian_filter(rng.standard_normal(grid.shape), 7.0)
    noise /= np.abs(noise).max()
    mask = (gaussian_filter(field, 8.0) + 0.3 * noise) > 0.42
    mask = _largest_component(_mrc_clean(mask, 8, 5))
    return MaskShape.from_mask(mask, grid, name="long-bar")


@pytest.fixture(scope="module")
def bar_field(spec_module):
    """Rectangular bars spread over ~3×1 tiles — every tile sub-problem
    is easy, so tiled runs exercise the seam machinery, not the inner
    method's convergence."""
    grid = PixelGrid(0.0, 0.0, 1.0, 760, 160)
    mask = np.zeros(grid.shape, dtype=bool)
    # bbox spans x ∈ [50, 710) → seams at x = 270 and 490 for 250 nm
    # tiles; both long bars cross a seam, the island stays > one halo
    # width away from either seam (it must end up frozen in the stitch).
    mask[60:100, 50:340] = True
    mask[60:100, 380:710] = True
    mask[115:145, 330:410] = True
    return MaskShape.from_mask(mask, grid, name="bar-field")


@pytest.fixture(scope="module")
def spec_module():
    from repro.mask.constraints import FractureSpec

    return FractureSpec()


def _inner(nmax: int = 300) -> ModelBasedFracturer:
    return ModelBasedFracturer(
        config=RefineConfig(params=RefineParams(nmax=nmax, nh=3))
    )


class TestWindowedFracturer:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedFracturer(_inner(), window_nm=0.0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            WindowedFracturer(_inner(), workers=0)

    def test_stitch_params_not_shared(self):
        a = WindowedFracturer(_inner())
        b = WindowedFracturer(_inner())
        assert a.stitch_params == b.stitch_params
        assert a.stitch_params is not b.stitch_params

    def test_small_shape_delegates(self, rect_shape, spec):
        windowed = WindowedFracturer(_inner(), window_nm=300.0)
        result = windowed.fracture(rect_shape, spec)
        assert result.extra["tiles"] == 1
        assert result.feasible

    def test_large_shape_decomposed(self, long_bar, spec_module):
        windowed = WindowedFracturer(
            _inner(), window_nm=250.0,
            stitch_params=RefineParams(nmax=300, nh=3),
        )
        result = windowed.fracture(long_bar, spec_module)
        assert result.extra["tiles"] >= 2
        assert result.shot_count >= 3
        # Stitching must leave at most a sliver of the seams unresolved.
        pixels = long_bar.pixels(spec_module.gamma)
        assert result.report.total_failing <= 0.01 * pixels.count_on

    def test_stitching_improves_on_raw_union(self, long_bar, spec_module):
        """The seam-repair pass must strictly help: compare the stitched
        result against the raw tile-shot union."""
        inner = _inner()
        raw = WindowedFracturer(
            inner, window_nm=250.0, stitch_params=RefineParams(nmax=0)
        ).fracture(long_bar, spec_module)
        stitched = WindowedFracturer(
            inner, window_nm=250.0,
            stitch_params=RefineParams(nmax=300, nh=3),
        ).fracture(long_bar, spec_module)
        assert stitched.report.total_failing <= raw.report.total_failing

    def test_every_shot_owned_once(self, long_bar, spec_module):
        """No duplicate shots from overlapping halos."""
        windowed = WindowedFracturer(
            _inner(), window_nm=250.0, stitch_params=RefineParams(nmax=0)
        )
        shots = windowed.fracture_shots(long_bar, spec_module)
        keys = [tuple(round(c, 3) for c in s.as_tuple()) for s in shots]
        assert len(keys) == len(set(keys))

    def test_multi_tile_feasible_and_near_direct(self, bar_field, spec_module):
        """Tiled execution on an easy multi-component layout is feasible
        and lands within a bounded shot-count delta of direct fracture
        of the individual components."""
        from repro.mask.constraints import check_solution

        inner = _inner(nmax=120)
        windowed = WindowedFracturer(inner, window_nm=250.0)
        shots = windowed.fracture_shots(bar_field, spec_module)
        report = check_solution(shots, bar_field, spec_module)
        assert report.total_failing == 0
        # Three rectangular components: the direct per-component optimum
        # is 3; tiling (which cuts both bars across seams) may pay a
        # bounded premium, never more than ~2 extra shots per crossing.
        assert len(shots) <= 3 + 2 * 2

    def test_deterministic_across_worker_counts(self, bar_field, spec_module):
        """workers=4 must reproduce workers=1 bit for bit — the merge
        order is row-major tile order either way."""
        inner = _inner(nmax=120)
        serial = WindowedFracturer(
            inner, window_nm=250.0, workers=1
        ).fracture_shots(bar_field, spec_module)
        parallel = WindowedFracturer(
            inner, window_nm=250.0, workers=4
        ).fracture_shots(bar_field, spec_module)
        assert serial == parallel

    def test_stitch_candidates_restricted_to_seam_bands(
        self, bar_field, spec_module
    ):
        """On the same merged tile shots, a region-restricted greedy
        pass must gather strictly fewer pricing candidates than an
        unrestricted one — the stitch cost scales with seam area."""
        from repro.fracture.state import RefinementState
        from repro.fracture.tiling import (
            extract_tile_shapes,
            plan_tiles,
            seam_band_masks,
            split_seam_shots,
        )
        from repro.fracture.windowed import _fracture_tile
        from repro.obs import TelemetryRecorder, recording

        inner = _inner(nmax=120)
        plan = plan_tiles(bar_field, spec_module, 250.0)
        collected = []
        for tile in plan.tiles:
            subs = extract_tile_shapes(bar_field, tile)
            if subs:
                collected.extend(_fracture_tile(inner, tile, subs, spec_module))

        full = RefinementState(bar_field, spec_module, collected)
        n_full = len(full.gather_edge_moves(full.cost_integral()))

        active, movable_nm = seam_band_masks(bar_field, plan, spec_module)
        movable, frozen = split_seam_shots(collected, plan, movable_nm)
        assert movable and frozen
        restricted = RefinementState(
            bar_field, spec_module, movable,
            background=frozen, active_mask=active,
        )
        n_restricted = len(
            restricted.gather_edge_moves(restricted.cost_integral())
        )
        assert n_restricted < n_full

        # And the executor reports the restriction through telemetry.
        recorder = TelemetryRecorder()
        with recording(recorder):
            WindowedFracturer(inner, window_nm=250.0).fracture_shots(
                bar_field, spec_module
            )
        assert "windowed.stitch_candidates_priced" in recorder.counters
        assert recorder.counters.get("windowed.frozen_shots", 0) > 0

    def test_telemetry_merged_from_workers(self, bar_field, spec_module):
        """Per-tile telemetry from pool workers lands in the parent
        recorder via the cross-process merge."""
        from repro.obs import TelemetryRecorder, recording

        inner = _inner(nmax=120)
        windowed = WindowedFracturer(inner, window_nm=250.0, workers=2)
        recorder = TelemetryRecorder()
        with recording(recorder):
            windowed.fracture_shots(bar_field, spec_module)
        assert recorder.counters.get("windowed.tiles", 0) >= 2
        assert recorder.counters.get("refine.moves_priced", 0) > 0


class TestSingleTileIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        width=st.integers(min_value=30, max_value=90),
        height=st.integers(min_value=20, max_value=60),
    )
    def test_single_tile_bit_identical_to_inner(self, width, height):
        """Property: when the shape fits one tile, the tiled executor is
        a pass-through — identical shots to the inner method."""
        from repro.mask.constraints import FractureSpec

        spec = FractureSpec()
        polygon = Polygon(
            [(0, 0), (width, 0), (width, height), (0, height)]
        )
        shape = MaskShape.from_polygon(
            polygon, margin=spec.grid_margin, name=f"rect{width}x{height}"
        )
        inner = _inner(nmax=80)
        direct = inner.fracture_shots(shape, spec)
        tiled = WindowedFracturer(inner, window_nm=400.0).fracture_shots(
            shape, spec
        )
        assert tiled == direct


class TestLegacyWindowedFracturer:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LegacyWindowedFracturer(_inner(), window_nm=0.0)

    def test_small_shape_delegates(self, rect_shape, spec):
        legacy = LegacyWindowedFracturer(_inner(), window_nm=300.0)
        result = legacy.fracture(rect_shape, spec)
        assert result.extra["slabs"] == 1
        assert result.feasible

    def test_large_shape_decomposed(self, long_bar, spec_module):
        legacy = LegacyWindowedFracturer(
            _inner(), window_nm=250.0,
            stitch_params=RefineParams(nmax=300, nh=3),
        )
        result = legacy.fracture(long_bar, spec_module)
        assert result.extra["slabs"] >= 2
        assert result.shot_count >= 3
        pixels = long_bar.pixels(spec_module.gamma)
        assert result.report.total_failing <= 0.01 * pixels.count_on
