"""Unit tests for AddShot / RemoveShot (paper §4.3, §4.4)."""

from repro.fracture.add_remove import add_shot, remove_shot
from repro.fracture.state import RefinementState
from repro.geometry.rect import Rect


class TestAddShot:
    def test_no_failing_pixels_no_add(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [Rect(-2, -2, 62, 42)])
        report = state.report()
        assert report.count_on == 0
        assert add_shot(state, report) is None

    def test_adds_over_uncovered_region(self, rect_shape, spec):
        # Cover only the left half; the right half is a failing cluster.
        state = RefinementState(rect_shape, spec, [Rect(-2, -2, 30, 42)])
        report = state.report()
        added = add_shot(state, report)
        assert added is not None
        assert added.center.x > 30.0  # over the uncovered right half
        assert len(state.shots) == 2

    def test_added_shot_meets_min_size(self, rect_shape, spec):
        # Uncovered sliver thinner than Lmin.
        state = RefinementState(rect_shape, spec, [Rect(-2, -2, 56, 42)])
        report = state.report()
        added = add_shot(state, report)
        if added is not None:
            assert added.meets_min_size(spec.lmin)

    def test_add_reduces_failing(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [Rect(-2, -2, 30, 42)])
        before = state.report().count_on
        add_shot(state, state.report())
        assert state.report().count_on < before

    def test_picks_biggest_cluster(self, l_shape, spec):
        # Leave both arms uncovered: the bigger failing cluster wins.
        state = RefinementState(l_shape, spec, [])
        report = state.report()
        added = add_shot(state, report)
        assert added is not None
        assert added.area >= 100.0


class TestRemoveShot:
    def test_empty_state_none(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [])
        assert remove_shot(state, state.report()) is None

    def test_no_off_failures_none(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [Rect(-2, -2, 62, 42)])
        report = state.report()
        assert report.count_off == 0
        assert remove_shot(state, report) is None

    def test_removes_the_offending_shot(self, rect_shape, spec):
        good = Rect(-2, -2, 62, 42)
        stray = Rect(75, 50, 95, 70)  # fully outside the target
        state = RefinementState(rect_shape, spec, [good, stray])
        report = state.report()
        assert report.count_off > 0
        removed = remove_shot(state, report)
        assert removed == stray
        assert state.shots == [good]
        assert state.report().feasible
