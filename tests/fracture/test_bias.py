"""Unit tests for BiasAllShots (paper §4.2)."""

from repro.fracture.bias import bias_all_shots
from repro.fracture.state import RefinementState
from repro.geometry.rect import Rect


class TestBiasDirection:
    def test_underexposure_grows_shots(self, rect_shape, spec):
        # Shot 4nm too small everywhere → P_on failures dominate.
        state = RefinementState(rect_shape, spec, [Rect(4, 4, 56, 36)])
        report = state.report()
        assert report.count_on > report.count_off
        bias_all_shots(state, report)
        assert state.shots[0].as_tuple() == (3, 3, 57, 37)

    def test_overexposure_shrinks_shots(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [Rect(-6, -6, 66, 46)])
        report = state.report()
        assert report.count_off > report.count_on
        bias_all_shots(state, report)
        assert state.shots[0].as_tuple() == (-5, -5, 65, 45)

    def test_bias_reduces_cost_when_uniform(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [Rect(4, 4, 56, 36)])
        before = state.report().cost
        bias_all_shots(state, state.report())
        assert state.report().cost < before

    def test_lmin_clamp_on_shrink(self, rect_shape, spec):
        tiny = Rect(20, 0, 20 + spec.lmin, 40)
        state = RefinementState(rect_shape, spec, [tiny, Rect(-6, -6, 66, 46)])
        report = state.report()
        bias_all_shots(state, report)
        # The Lmin-wide shot keeps its width; only its height shrinks.
        assert state.shots[0].width == spec.lmin
        assert state.shots[0].height == 40 - 2 * spec.pitch

    def test_all_shots_biased_together(self, rect_shape, spec):
        shots = [Rect(4, 4, 30, 36), Rect(30, 4, 56, 36)]
        state = RefinementState(rect_shape, spec, shots)
        report = state.report()
        bias_all_shots(state, report)
        assert all(
            new.width == old.width + 2 * spec.pitch
            for old, new in zip(shots, state.shots)
        )


class TestPaperTextDirection:
    def test_ablation_flag_inverts_direction(self, rect_shape, spec):
        """§4.2 as literally written shrinks when P_on failures dominate
        — the ablation flag reproduces that (physically inconsistent)
        behaviour so the discrepancy is measurable."""
        from repro.fracture.state import RefinementState
        from repro.geometry.rect import Rect

        state = RefinementState(rect_shape, spec, [Rect(4, 4, 56, 36)])
        report = state.report()
        assert report.count_on > report.count_off
        bias_all_shots(state, report, paper_text_direction=True)
        assert state.shots[0].as_tuple() == (5, 5, 55, 35)  # shrunk

    def test_paper_direction_increases_cost(self, rect_shape, spec):
        from repro.fracture.state import RefinementState
        from repro.geometry.rect import Rect

        state = RefinementState(rect_shape, spec, [Rect(4, 4, 56, 36)])
        before = state.report().cost
        bias_all_shots(state, state.report(), paper_text_direction=True)
        assert state.report().cost > before
