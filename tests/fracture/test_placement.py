"""Unit tests for shot placement from color classes (paper Fig. 4)."""

import pytest

from repro.fracture.corner_points import CornerType, ShotCornerPoint
from repro.fracture.placement import shot_from_class
from repro.geometry.point import Point

LMIN = 10.0


def _scp(x, y, ctype) -> ShotCornerPoint:
    return ShotCornerPoint(Point(x, y), ctype)


class TestFullyPinned:
    def test_diagonal_pair(self, rect_shape):
        shot = shot_from_class(
            [_scp(0, 0, CornerType.BOTTOM_LEFT), _scp(60, 40, CornerType.TOP_RIGHT)],
            rect_shape, LMIN,
        )
        assert shot is not None and shot.as_tuple() == (0, 0, 60, 40)

    def test_four_corners_averaged(self, rect_shape):
        shot = shot_from_class(
            [
                _scp(0, 0, CornerType.BOTTOM_LEFT),
                _scp(1, 0, CornerType.BOTTOM_RIGHT),  # near-degenerate input
                _scp(0, 40, CornerType.TOP_LEFT),
                _scp(60, 40, CornerType.TOP_RIGHT),
            ],
            rect_shape, LMIN,
        )
        assert shot is not None
        # Conflicting right corners average; min-size widening applies.
        assert shot.meets_min_size(LMIN)


class TestDegenerateClasses:
    def test_empty_class(self, rect_shape):
        assert shot_from_class([], rect_shape, LMIN) is None

    def test_top_pair_extends_to_bottom_boundary(self, rect_shape):
        """Fig. 4: two top corners; the bottom edge must extend down to
        the opposite boundary of the 0..40 target."""
        shot = shot_from_class(
            [_scp(20, 40, CornerType.TOP_LEFT), _scp(50, 40, CornerType.TOP_RIGHT)],
            rect_shape, LMIN,
        )
        assert shot is not None
        assert shot.ybl <= 2.0  # reached (near) the bottom boundary at y=0
        assert shot.ytr == pytest.approx(40.0)

    def test_left_pair_extends_right(self, rect_shape):
        shot = shot_from_class(
            [_scp(0, 5, CornerType.BOTTOM_LEFT), _scp(0, 35, CornerType.TOP_LEFT)],
            rect_shape, LMIN,
        )
        assert shot is not None
        assert shot.xtr >= 55.0

    def test_single_corner_extends_both_axes(self, rect_shape):
        shot = shot_from_class([_scp(0, 0, CornerType.BOTTOM_LEFT)], rect_shape, LMIN)
        assert shot is not None
        assert shot.xtr >= 55.0 and shot.ytr >= 35.0

    def test_extension_stops_at_notch(self, l_shape):
        """Extending within the L's vertical arm must stop at the notch
        boundary (x=40), not run into the bottom bar's full width."""
        shot = shot_from_class(
            [_scp(0, 50, CornerType.BOTTOM_LEFT), _scp(0, 70, CornerType.TOP_LEFT)],
            l_shape, LMIN,
        )
        assert shot is not None
        assert shot.xtr <= 45.0

    def test_min_size_enforced_between_close_pins(self, rect_shape):
        shot = shot_from_class(
            [_scp(20, 10, CornerType.BOTTOM_LEFT), _scp(24, 30, CornerType.TOP_RIGHT)],
            rect_shape, LMIN,
        )
        assert shot is not None
        assert shot.width >= LMIN
