"""Unit tests for the 2-D tile decomposition and seam-band machinery."""

import numpy as np
import pytest

from repro.fracture.state import RefinementState
from repro.fracture.tiling import (
    extract_tile_shapes,
    halo_nm,
    ownership_stretch,
    plan_tiles,
    seam_band_masks,
    split_seam_shots,
)
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect
from repro.mask.shape import MaskShape


def _bars_shape() -> MaskShape:
    """A wide bar spanning three tiles plus a small isolated island."""
    grid = PixelGrid(0.0, 0.0, 1.0, 760, 220)
    mask = np.zeros(grid.shape, dtype=bool)
    mask[60:100, 50:710] = True
    mask[140:170, 330:380] = True  # island owned by the middle tile
    return MaskShape.from_mask(mask, grid, name="bars")


class TestPlanTiles:
    def test_deterministic(self, spec):
        shape = _bars_shape()
        a = plan_tiles(shape, spec, 250.0)
        b = plan_tiles(shape, spec, 250.0)
        assert a == b

    def test_small_extent_single_tile(self, rect_shape, spec):
        plan = plan_tiles(rect_shape, spec, 300.0)
        assert len(plan) == 1
        assert not plan.has_seams

    def test_grid_shape_and_seams(self, spec):
        shape = _bars_shape()
        plan = plan_tiles(shape, spec, 250.0)
        assert plan.tiles_x >= 2
        assert plan.tiles_y == 1
        assert len(plan.seam_xs) == plan.tiles_x - 1
        assert plan.seam_ys == ()
        # Row-major order.
        order = [(t.iy, t.ix) for t in plan.tiles]
        assert order == sorted(order)

    def test_ownership_partition(self, spec):
        """Every point in the stretched bounding region has exactly one
        owner — including points exactly on seam lines."""
        shape = _bars_shape()
        plan = plan_tiles(shape, spec, 250.0)
        bbox = shape.polygon.bounding_box()
        rng = np.random.default_rng(7)
        xs = list(rng.uniform(bbox.xbl, bbox.xtr, 50)) + list(plan.seam_xs)
        ys = list(rng.uniform(bbox.ybl, bbox.ytr, 5))
        for x in xs:
            for y in ys:
                owners = [t for t in plan.tiles if t.owns(x, y)]
                assert len(owners) == 1

    def test_boundary_stretch_is_blur_derived(self, spec):
        """Outer tiles own shot centres hugging (or slightly outside) the
        target bounding box — out to 2σ + L_th, and no further.

        Regression for the magic ``10 × grid_margin`` stretch this
        replaced: the reach must follow the same 2σ argument as the
        blocked-zone rule, not an arbitrary multiplier.
        """
        shape = _bars_shape()
        plan = plan_tiles(shape, spec, 250.0)
        bbox = shape.polygon.bounding_box()
        stretch = ownership_stretch(spec)
        assert stretch == pytest.approx(2.0 * spec.sigma + spec.lth)
        y = (bbox.ybl + bbox.ytr) / 2.0
        assert plan.owner_of(bbox.xbl - 0.9 * stretch, y) is not None
        assert plan.owner_of(bbox.xtr + 0.9 * stretch, y) is not None
        # Beyond the stretch nothing is owned: such a shot centre cannot
        # contribute printable dose, so orphaning it is correct.
        assert plan.owner_of(bbox.xbl - stretch - 1.0, y) is None
        assert plan.owner_of(bbox.xtr + stretch + 1.0, y) is None

    def test_halo_contains_core(self, spec):
        shape = _bars_shape()
        plan = plan_tiles(shape, spec, 250.0)
        for tile in plan.tiles:
            assert tile.halo.contains_rect(tile.core)
            assert tile.halo.xbl == pytest.approx(tile.core.xbl - halo_nm(spec))


class TestExtractTileShapes:
    def test_owned_island_not_dropped(self, spec):
        """Regression for the historical dropped-component bug: a small
        component wholly owned by one tile must be extracted."""
        shape = _bars_shape()
        plan = plan_tiles(shape, spec, 250.0)
        per_tile = [extract_tile_shapes(shape, t) for t in plan.tiles]
        total_subs = sum(len(subs) for subs in per_tile)
        # The bar appears in every tile, the island in exactly one.
        assert total_subs == len(plan) + 1
        island_tiles = [
            subs for subs in per_tile
            if any(s.inside.sum() == 30 * 50 for s in subs)
        ]
        assert len(island_tiles) == 1

    def test_legacy_slab_extraction_drops_island(self, spec):
        """The baseline's largest-component slab extraction loses the
        island — the behaviour the tiled executor exists to fix."""
        from repro.fracture.pipeline import ModelBasedFracturer
        from repro.fracture.windowed import LegacyWindowedFracturer

        shape = _bars_shape()
        legacy = LegacyWindowedFracturer(ModelBasedFracturer(), window_nm=250.0)
        middle = legacy._slab_shape(shape, 250.0, 510.0)
        assert middle is not None
        assert not middle.inside[140:170, :].any()

    def test_every_owned_pixel_covered(self, spec):
        """Union of extracted sub-shapes covers the whole target."""
        shape = _bars_shape()
        plan = plan_tiles(shape, spec, 250.0)
        covered = np.zeros(shape.grid.shape, dtype=bool)
        grid = shape.grid
        for tile in plan.tiles:
            for sub in extract_tile_shapes(shape, tile):
                sg = sub.grid
                ix = int(round((sg.x0 - grid.x0) / grid.pitch))
                iy = int(round((sg.y0 - grid.y0) / grid.pitch))
                covered[iy : iy + sg.ny, ix : ix + sg.nx] |= sub.inside
        assert (covered >= shape.inside).all()


class TestSeamBands:
    def test_mask_covers_seams_only(self, spec):
        shape = _bars_shape()
        plan = plan_tiles(shape, spec, 250.0)
        active, movable_nm = seam_band_masks(shape, plan, spec)
        assert movable_nm == pytest.approx(halo_nm(spec))
        grid = shape.grid
        for sx in plan.seam_xs:
            col = int((sx - grid.x0) / grid.pitch)
            assert active[:, col].all()
        # Strictly a band, not the whole chip.
        assert 0.0 < active.mean() < 1.0
        assert not active[:, 0].any()
        assert not active[:, -1].any()

    def test_split_partitions_all_shots(self, spec):
        shape = _bars_shape()
        plan = plan_tiles(shape, spec, 250.0)
        shots = [
            Rect(50.0, 60.0, 120.0, 100.0),     # far from both seams
            Rect(230.0, 60.0, 280.0, 100.0),    # straddles first seam
            Rect(700.0, 60.0, 710.0, 100.0),    # far from both seams
        ]
        movable, frozen = split_seam_shots(shots, plan, 10.0)
        assert len(movable) + len(frozen) == len(shots)
        assert shots[1] in movable
        assert shots[0] in frozen and shots[2] in frozen


class TestMutationGuard:
    """Region-restricted refinement must not mutate dose outside the
    active mask — the invariant that keeps seam stitching sound."""

    def _restricted_state(self, rect_shape, spec):
        mask = np.zeros(rect_shape.grid.shape, dtype=bool)
        mask[:, :10] = True  # active region far from the shot below
        shot = Rect(20.0, 20.0, 40.0, 40.0)
        state = RefinementState(
            rect_shape, spec, [shot], active_mask=mask
        )
        return state, shot

    def test_edge_move_forbidden_outside_mask(self, rect_shape, spec):
        state, _ = self._restricted_state(rect_shape, spec)
        assert not state.apply_edge_move(0, "right", spec.pitch)
        assert state.edge_move_delta_cost(0, "right", spec.pitch) is None
        assert state.make_edge_move_candidate(0, "right", spec.pitch) is None

    def test_gather_excludes_forbidden_moves(self, rect_shape, spec):
        state, _ = self._restricted_state(rect_shape, spec)
        assert state.gather_edge_moves(state.cost_integral()) == []

    def test_unrestricted_allows_everything(self, rect_shape, spec):
        state = RefinementState(
            rect_shape, spec, [Rect(20.0, 20.0, 40.0, 40.0)]
        )
        assert state.mutation_allowed(
            (slice(0, state.shape.grid.ny), slice(0, state.shape.grid.nx))
        )
        assert state.apply_edge_move(0, "right", spec.pitch)

    def test_bias_skips_out_of_mask_shots(self, rect_shape, spec):
        from repro.fracture.bias import bias_all_shots

        state, shot = self._restricted_state(rect_shape, spec)
        bias_all_shots(state, state.report())
        assert state.shots == [shot]

    def test_remove_skips_out_of_mask_shots(self, rect_shape, spec):
        from repro.fracture.add_remove import remove_shot

        state, shot = self._restricted_state(rect_shape, spec)
        report = state.report()
        if report.fail_off.any():
            assert remove_shot(state, report) is None
        assert state.shots == [shot]
