"""Unit tests for MergeShots (paper §4.5, Fig. 5)."""

from repro.fracture.merge import merge_shots
from repro.fracture.state import RefinementState
from repro.geometry.rect import Rect


class TestContainment:
    def test_contained_shot_removed(self, rect_shape, spec):
        state = RefinementState(
            rect_shape, spec, [Rect(0, 0, 60, 40), Rect(10, 10, 30, 30)]
        )
        merged = merge_shots(state)
        assert merged == 1
        assert state.shots == [Rect(0, 0, 60, 40)]

    def test_identical_shots_deduplicated(self, rect_shape, spec):
        state = RefinementState(
            rect_shape, spec, [Rect(0, 0, 60, 40), Rect(0, 0, 60, 40)]
        )
        assert merge_shots(state) == 1
        assert len(state.shots) == 1


class TestAlignedExtension:
    def test_x_aligned_pair_merges_inside_target(self, rect_shape, spec):
        # Two vertically stacked shots spanning the rect: merge to one.
        state = RefinementState(
            rect_shape, spec, [Rect(0, 0, 60, 18), Rect(1, 25, 60, 40)]
        )
        assert merge_shots(state) == 1
        assert len(state.shots) == 1
        assert state.shots[0].union_bbox(Rect(0, 0, 60, 40)) == Rect(0, 0, 60, 40)

    def test_y_aligned_pair_merges(self, rect_shape, spec):
        state = RefinementState(
            rect_shape, spec, [Rect(0, 0, 25, 40), Rect(35, 1, 60, 40)]
        )
        assert merge_shots(state) == 1

    def test_misaligned_pair_not_merged(self, rect_shape, spec):
        state = RefinementState(
            rect_shape, spec, [Rect(0, 0, 30, 18), Rect(20, 25, 60, 40)]
        )
        assert merge_shots(state) == 0
        assert len(state.shots) == 2

    def test_merge_across_notch_blocked(self, l_shape, spec):
        """Fig. 5 right: merging across the L's notch would cover P_off,
        so the 90% rule must reject it."""
        # Two x-aligned shots in the vertical arm region and beyond the
        # notch: their union bbox dips into the notch (x>40, y>30).
        state = RefinementState(
            l_shape, spec, [Rect(45, 0, 80, 28), Rect(45.5, 50, 80.5, 90)]
        )
        assert merge_shots(state) == 0

    def test_alignment_tolerance_is_gamma(self, rect_shape, spec):
        offset = spec.gamma + 0.5  # just beyond tolerance
        state = RefinementState(
            rect_shape, spec, [Rect(0, 0, 60, 18), Rect(offset, 25, 60 + offset, 40)]
        )
        assert merge_shots(state) == 0

    def test_cascading_merges(self, rect_shape, spec):
        """Three stacked aligned shots collapse to one via two merges."""
        state = RefinementState(
            rect_shape, spec,
            [Rect(0, 0, 60, 12), Rect(0, 14, 60, 26), Rect(0, 28, 60, 40)],
        )
        assert merge_shots(state) == 2
        assert len(state.shots) == 1
