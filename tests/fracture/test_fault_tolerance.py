"""Integration tests: fault-tolerant tiled execution end to end.

The acceptance bar of the fault layer: an injected hard crash (worker
``os._exit``), hang (deadline exceeded) or raised exception on any tile
neither fails the run nor changes the final shot list — retries, pool
respawns, resume and any worker count reproduce the fault-free
single-worker result bit for bit (fallback tiles excepted and flagged).
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.fracture.refine import RefineParams
from repro.fracture.runtime import (
    FaultPlan,
    PoolBroken,
    RetryPolicy,
    RuntimePolicy,
)
from repro.fracture.tiling import plan_tiles
from repro.fracture.windowed import WindowedFracturer
from repro.geometry.raster import PixelGrid
from repro.mask.constraints import FractureSpec
from repro.mask.shape import MaskShape
from repro.obs import TelemetryRecorder, recording


@pytest.fixture(scope="module")
def spec_module():
    return FractureSpec()


@pytest.fixture(scope="module")
def bar_field(spec_module):
    """Three rectangular components over a 3×1 tile grid (see
    test_windowed.py): every sub-problem is easy, so these tests
    exercise the fault machinery, not the inner method."""
    grid = PixelGrid(0.0, 0.0, 1.0, 760, 160)
    mask = np.zeros(grid.shape, dtype=bool)
    mask[60:100, 50:340] = True
    mask[60:100, 380:710] = True
    mask[115:145, 330:410] = True
    return MaskShape.from_mask(mask, grid, name="bar-field")


def _inner():
    return ModelBasedFracturer(
        config=RefineConfig(params=RefineParams(nmax=120, nh=3))
    )


def _windowed(workers=1, runtime=None):
    return WindowedFracturer(
        _inner(), window_nm=250.0, workers=workers, runtime=runtime
    )


@pytest.fixture(scope="module")
def clean_shots(bar_field, spec_module):
    """The fault-free single-worker reference every test compares to."""
    return _windowed(workers=1).fracture_shots(bar_field, spec_module)


@pytest.fixture(scope="module")
def tile_names(bar_field, spec_module):
    return [t.name for t in plan_tiles(bar_field, spec_module, 250.0).tiles]


_FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0)


class TestCrashRecovery:
    def test_real_worker_crash_is_bit_identical(
        self, bar_field, spec_module, clean_shots
    ):
        """A worker hard-killed mid-tile (os._exit): the pool respawns,
        the tile retries, and the final shot list is unchanged."""
        runtime = RuntimePolicy(
            retry=_FAST_RETRY,
            fault_plan=FaultPlan.parse(["t1,0:crash"]),
        )
        recorder = TelemetryRecorder()
        with recording(recorder):
            shots = _windowed(workers=4, runtime=runtime).fracture_shots(
                bar_field, spec_module
            )
        assert shots == clean_shots
        assert recorder.counters.get("windowed.pool_respawns", 0) >= 1
        assert recorder.counters.get("windowed.tile_retries", 0) >= 1
        assert recorder.counters.get("windowed.tile_fallbacks", 0) == 0

    def test_inline_crash_simulation_is_bit_identical(
        self, bar_field, spec_module, clean_shots
    ):
        """workers=1 simulates the crash as an exception (a real
        SIGKILL would take down the run itself) — same result."""
        runtime = RuntimePolicy(
            retry=_FAST_RETRY,
            fault_plan=FaultPlan.parse(["t1,0:crash"]),
        )
        shots = _windowed(workers=1, runtime=runtime).fracture_shots(
            bar_field, spec_module
        )
        assert shots == clean_shots

    def test_pool_respawn_budget_exhaustion_raises(
        self, bar_field, spec_module
    ):
        """When the pool cannot be kept alive, the failure is explicit —
        PoolBroken, not a bare BrokenProcessPool traceback."""
        runtime = RuntimePolicy(
            retry=RetryPolicy(
                max_attempts=9, backoff_s=0.0, backoff_cap_s=0.0,
                max_pool_respawns=0,
            ),
            fault_plan=FaultPlan.parse(["t1,0:crash:99"]),
        )
        with pytest.raises(PoolBroken):
            _windowed(workers=2, runtime=runtime).fracture_shots(
                bar_field, spec_module
            )


class TestHangRecovery:
    def test_deadline_kills_hung_worker_and_retries(
        self, bar_field, spec_module, clean_shots
    ):
        runtime = RuntimePolicy(
            retry=RetryPolicy(
                max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0,
                tile_deadline_s=2.0,
            ),
            fault_plan=FaultPlan.parse(["t1,0:hang"], hang_s=60.0),
        )
        recorder = TelemetryRecorder()
        with recording(recorder):
            shots = _windowed(workers=2, runtime=runtime).fracture_shots(
                bar_field, spec_module
            )
        assert shots == clean_shots
        assert recorder.counters.get("windowed.tile_timeouts", 0) >= 1
        assert recorder.counters.get("windowed.pool_respawns", 0) >= 1


class TestDegradationLadder:
    def test_persistent_failure_falls_back_not_fails(
        self, bar_field, spec_module, clean_shots
    ):
        """A tile that fails every attempt degrades to the partition
        baseline: the run completes, the tile is flagged, the other
        tiles are untouched."""
        runtime = RuntimePolicy(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, backoff_cap_s=0.0),
            fault_plan=FaultPlan.parse(["t1,0:raise:99"]),
        )
        recorder = TelemetryRecorder()
        fracturer = _windowed(workers=1, runtime=runtime)
        with recording(recorder):
            shots = fracturer.fracture_shots(bar_field, spec_module)
        assert shots  # the run survived
        assert fracturer._last_extra["fallback_tiles"] == ["t1,0"]
        assert recorder.counters.get("windowed.tile_fallbacks", 0) == 1
        manifest_entries = recorder.manifest.get("fault_tolerance")
        assert manifest_entries and manifest_entries[0]["fallback_tiles"] == ["t1,0"]
        # Degradation is deliberately *not* bit-identical on the failed
        # tile — but it must still deliver coverage there.
        assert len(shots) >= len(clean_shots)


class TestCheckpointResume:
    def test_mid_run_interrupt_and_resume(
        self, bar_field, spec_module, clean_shots, tmp_path
    ):
        """Kill the run after one tile (simulated by truncating the
        journal), resume: bit-identical result, only the unfinished
        tiles re-execute."""
        ckpt = tmp_path / "ckpt"
        full = _windowed(
            workers=1, runtime=RuntimePolicy(checkpoint_dir=ckpt)
        ).fracture_shots(bar_field, spec_module)
        assert full == clean_shots
        journal_path = ckpt / "bar-field.tiles.jsonl"
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 4  # header + 3 tiles
        journal_path.write_text("\n".join(lines[:2]) + "\n")
        recorder = TelemetryRecorder()
        with recording(recorder):
            resumed = _windowed(
                workers=1,
                runtime=RuntimePolicy(checkpoint_dir=ckpt, resume=True),
            ).fracture_shots(bar_field, spec_module)
        assert resumed == clean_shots
        assert recorder.counters.get("windowed.tiles_replayed") == 1

    def test_journal_records_are_loadable_json(
        self, bar_field, spec_module, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        _windowed(
            workers=1, runtime=RuntimePolicy(checkpoint_dir=ckpt)
        ).fracture_shots(bar_field, spec_module)
        lines = (ckpt / "bar-field.tiles.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "header"
        assert all(r["kind"] == "tile" for r in records[1:])
        assert all(r["status"] == "ok" for r in records[1:])


class TestBitIdentityProperty:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        workers=st.sampled_from([1, 4]),
        keep=st.integers(min_value=0, max_value=3),
    )
    def test_faulted_and_resumed_runs_reproduce_clean_run(
        self, bar_field, spec_module, clean_shots, tile_names, tmp_path_factory,
        seed, workers, keep,
    ):
        """Property: a crash injected on a seeded random tile subset
        (then retried), and a --resume from a mid-run checkpoint, are
        both bit-identical to the clean run at workers ∈ {1, 4}."""
        plan = FaultPlan.seeded(tile_names, seed=seed, action="crash", fraction=0.5)
        shots = _windowed(
            workers=workers,
            runtime=RuntimePolicy(retry=_FAST_RETRY, fault_plan=plan),
        ).fracture_shots(bar_field, spec_module)
        assert shots == clean_shots

        # Mid-run checkpoint: keep a prefix of completed tiles, resume.
        ckpt = tmp_path_factory.mktemp("ckpt")
        _windowed(
            workers=1, runtime=RuntimePolicy(checkpoint_dir=ckpt)
        ).fracture_shots(bar_field, spec_module)
        journal_path = ckpt / "bar-field.tiles.jsonl"
        lines = journal_path.read_text().splitlines()
        journal_path.write_text("\n".join(lines[: 1 + keep]) + "\n")
        resumed = _windowed(
            workers=workers,
            runtime=RuntimePolicy(checkpoint_dir=ckpt, resume=True),
        ).fracture_shots(bar_field, spec_module)
        assert resumed == clean_shots
