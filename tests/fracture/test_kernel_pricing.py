"""Bit-identity gates for the fused pricing kernel.

The fused gather/scatter ``clamped_band_sums`` path — and both sides of
its adaptive band-size dispatch — must reproduce the per-candidate loop
engine bit for bit: same elementwise operation sequence, same pairwise
per-candidate sums, so ``np.array_equal`` (not approximate closeness)
is the bar.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fracture.graph_color import approximate_fracture
from repro.fracture.refine import RefineParams, refine
from repro.fracture.state import RefinementState
from repro.kernels import use_backend
from repro.kernels.numpy_backend import NumpyBackend


@pytest.fixture()
def priced_inputs(l_shape, spec):
    shots, _ = approximate_fracture(l_shape, spec)
    state = RefinementState(l_shape, spec, shots)
    cost_integral = state.cost_integral().copy()
    active_integral = state.active_integral().copy()
    candidates = state.gather_edge_moves(cost_integral)
    assert candidates, "expected candidates on an unrefined fracture"
    return state, candidates, cost_integral, active_integral


class TestFusedBitIdentity:
    def test_fused_kernel_equals_loop(self, priced_inputs):
        state, candidates, cost_integral, active_integral = priced_inputs
        backend = NumpyBackend()
        backend.fused_band_limit = None  # force the fused kernel
        fused = state._price_edge_moves_fused(
            candidates, cost_integral, active_integral, backend
        )
        loop = state._price_edge_moves_loop(
            candidates, cost_integral, active_integral
        )
        assert np.array_equal(fused, loop)

    def test_adaptive_fallback_equals_loop(self, priced_inputs):
        state, candidates, cost_integral, active_integral = priced_inputs
        backend = NumpyBackend()
        backend.fused_band_limit = 0  # force the in-place scoring branch
        fallback = state._price_edge_moves_fused(
            candidates, cost_integral, active_integral, backend
        )
        loop = state._price_edge_moves_loop(
            candidates, cost_integral, active_integral
        )
        assert np.array_equal(fallback, loop)

    def test_public_dispatch_identical_across_backends(self, priced_inputs):
        state, candidates, cost_integral, active_integral = priced_inputs
        prices = {}
        for name in ("numpy", "scalar"):
            with use_backend(name):
                prices[name] = state.price_edge_moves(
                    candidates, cost_integral, active_integral
                )
        assert np.array_equal(prices["numpy"], prices["scalar"])

    def test_fused_matches_scalar_oracle(self, priced_inputs):
        state, candidates, cost_integral, active_integral = priced_inputs
        with use_backend("numpy"):
            priced = state.price_edge_moves(
                candidates, cost_integral, active_integral
            )
        for candidate, value in zip(candidates, priced):
            oracle = state.edge_move_delta_cost(
                candidate.index,
                candidate.edge,
                candidate.delta,
                cost_integral,
                active_integral,
            )
            assert oracle is not None
            assert abs(value - oracle) <= 1e-12


class TestEndToEndAcrossBackends:
    @pytest.mark.parametrize("fixture", ["rect_shape", "l_shape", "blob_shape"])
    def test_refine_shots_identical(self, fixture, spec, request):
        shape = request.getfixturevalue(fixture)
        initial, _ = approximate_fracture(shape, spec)
        results = {}
        for name in ("numpy", "scalar"):
            with use_backend(name):
                shots, trace = refine(
                    shape, spec, initial, RefineParams(nmax=8)
                )
            results[name] = (
                [s.as_tuple() for s in shots],
                trace.iterations,
            )
        assert results["numpy"] == results["scalar"]
