"""Unit tests for the content-addressed fracture result cache."""

import json

import pytest

from repro.fracture.base import FractureResult
from repro.fracture.cache import (
    FractureCache,
    canonical_fingerprint,
    fingerprint_polygon,
    result_from_payload,
    result_to_payload,
    translate_shots,
)
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.mask.constraints import FailureReport, FractureSpec
from repro.mask.shape import MaskShape
from repro.methods import make_fracturer

SPEC = FractureSpec()


def rect_poly(x0=0, y0=0, w=100, h=60):
    return Polygon([(x0, y0), (x0 + w, y0), (x0 + w, y0 + h), (x0, y0 + h)])


def fracture(polygon, name="clip"):
    shape = MaskShape.from_polygon(
        polygon, pitch=SPEC.pitch, margin=SPEC.grid_margin, name=name
    )
    return make_fracturer("partition").fracture(shape, SPEC)


class TestFingerprint:
    def test_translation_invariant(self):
        fp_a, off_a = fingerprint_polygon(rect_poly(), SPEC, "m", None)
        fp_b, off_b = fingerprint_polygon(rect_poly(500, 700), SPEC, "m", None)
        assert fp_a == fp_b
        assert off_b == (500.0, 700.0)

    def test_int_and_float_coordinates_agree(self):
        ints = Polygon([(0, 0), (60, 0), (60, 40), (0, 40)])
        floats = Polygon([(0.0, 0.0), (60.0, 0.0), (60.0, 40.0), (0.0, 40.0)])
        assert fingerprint_polygon(ints, SPEC, "m", None)[0] == \
            fingerprint_polygon(floats, SPEC, "m", None)[0]

    def test_negative_zero_collapsed(self):
        a = canonical_fingerprint([[0.0, 0.0], [10.0, 0.0]], SPEC, "m", None)
        b = canonical_fingerprint([[-0.0, 0.0], [10.0, -0.0]], SPEC, "m", None)
        assert a == b

    def test_window_int_float_agree(self):
        verts = [[0.0, 0.0], [10.0, 0.0]]
        assert canonical_fingerprint(verts, SPEC, "m", 512) == \
            canonical_fingerprint(verts, SPEC, "m", 512.0)

    def test_method_and_window_split_keys(self):
        verts = [[0.0, 0.0], [10.0, 0.0]]
        base = canonical_fingerprint(verts, SPEC, "m", None)
        assert canonical_fingerprint(verts, SPEC, "other", None) != base
        assert canonical_fingerprint(verts, SPEC, "m", 512.0) != base

    def test_geometry_splits_keys(self):
        assert fingerprint_polygon(rect_poly(w=100), SPEC, "m", None)[0] != \
            fingerprint_polygon(rect_poly(w=120), SPEC, "m", None)[0]


class TestPayloadRoundtrip:
    def test_report_digest_survives(self):
        result = fracture(rect_poly())
        payload = result_to_payload(result, frame=(0.0, 0.0))
        back = result_from_payload(payload, shape_name="clip")
        assert back.shots == result.shots
        assert back.feasible == result.feasible
        assert back.report.total_failing == result.report.total_failing
        assert back.report.cost == result.report.cost
        assert back.report.undersize_shots == result.report.undersize_shots
        assert back.extra["cache_hit"] is True
        assert back.extra["cached_runtime_s"] == result.runtime_s

    def test_frame_translation(self):
        result = fracture(rect_poly())
        payload = result_to_payload(result, frame=(100.0, 200.0))
        back = result_from_payload(
            payload, shape_name="clip", frame=(150.0, 180.0)
        )
        assert back.shots == translate_shots(result.shots, 50.0, -20.0)

    def test_json_round_trip_preserves_shots(self):
        result = fracture(rect_poly())
        payload = json.loads(json.dumps(result_to_payload(result)))
        assert result_from_payload(payload, "clip").shots == result.shots

    def test_translate_shots_identity_copies(self):
        shots = [Rect(0, 0, 10, 10)]
        out = translate_shots(shots, 0.0, 0.0)
        assert out == shots and out is not shots


class TestFractureCache:
    def test_get_put_and_stats(self):
        cache = FractureCache()
        assert cache.get("missing") is None
        cache.put("k", {"shots": [], "shot_count": 0})
        assert cache.get("k") == {"shots": [], "shot_count": 0}
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_empty_cache_is_truthy(self):
        # `if cache:` must never silently skip a warm disk store.
        assert FractureCache()

    def test_eviction_is_fifo(self):
        cache = FractureCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put(key, {"shots": [], "key": key})
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c") is not None

    def test_result_interface_translates_placement(self):
        cache = FractureCache()
        result = fracture(rect_poly())
        cache.put_result(rect_poly(), SPEC, result, method="partition")
        moved = rect_poly(300, 400)
        hit = cache.get_result(moved, SPEC, method="partition")
        assert hit is not None
        assert hit.shots == translate_shots(result.shots, 300.0, 400.0)
        assert cache.get_result(moved, SPEC, method="other") is None

    def test_put_result_method_overrides_display_name(self):
        # Registry name and FractureResult.method (class display name)
        # can differ; the explicit method parameter keys the entry.
        cache = FractureCache()
        result = fracture(rect_poly())
        assert result.method != "registry-alias"
        cache.put_result(rect_poly(), SPEC, result, method="registry-alias")
        assert cache.get_result(rect_poly(), SPEC, "registry-alias") is not None
        assert cache.get_result(rect_poly(), SPEC, result.method) is None


class TestPersistence:
    def test_disk_round_trip(self, tmp_path):
        store = tmp_path / "cache"
        warm = FractureCache(persist_dir=store)
        result = fracture(rect_poly())
        fp = warm.put_result(rect_poly(), SPEC, result, method="partition")
        assert (store / f"{fp}.json").exists()

        cold = FractureCache(persist_dir=store)
        hit = cold.get_result(rect_poly(77, 88), SPEC, "partition")
        assert hit is not None
        assert hit.shots == translate_shots(result.shots, 77.0, 88.0)
        stats = cold.stats()
        assert stats["disk_hits"] == 1
        assert stats["disk_entries"] == 1

    def test_corrupt_disk_entry_reads_as_miss(self, tmp_path):
        store = tmp_path / "cache"
        cache = FractureCache(persist_dir=store)
        fp = cache.put_result(
            rect_poly(), SPEC, fracture(rect_poly()), method="partition"
        )
        (store / f"{fp}.json").write_text("{ torn")
        cold = FractureCache(persist_dir=store)
        assert cold.get(fp) is None
        (store / f"{fp}.json").write_text(json.dumps({"no": "shots"}))
        assert FractureCache(persist_dir=store).get(fp) is None

    def test_memoryless_stats_without_persist_dir(self):
        assert "disk_hits" not in FractureCache().stats()

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            FractureCache(max_entries=0)


class TestFracturerIntegration:
    def test_fracture_populates_and_hits(self):
        fracturer = make_fracturer("partition")
        fracturer.cache = FractureCache()
        shape = MaskShape.from_polygon(
            rect_poly(), pitch=SPEC.pitch, margin=SPEC.grid_margin, name="a"
        )
        first = fracturer.fracture(shape, SPEC)
        assert not first.extra.get("cache_hit")
        moved = MaskShape.from_polygon(
            rect_poly(40, 80), pitch=SPEC.pitch, margin=SPEC.grid_margin,
            name="b",
        )
        second = fracturer.fracture(moved, SPEC)
        assert second.extra.get("cache_hit") is True
        assert second.shots == translate_shots(first.shots, 40.0, 80.0)

    def test_registry_name_keys_the_cache(self):
        # make_fracturer sets cache_method to the registry name, so a
        # fresh result stored via fracture() is found under that name.
        fracturer = make_fracturer("partition")
        cache = FractureCache()
        fracturer.cache = cache
        shape = MaskShape.from_polygon(
            rect_poly(), pitch=SPEC.pitch, margin=SPEC.grid_margin, name="a"
        )
        fracturer.fracture(shape, SPEC)
        assert cache.get_result(rect_poly(), SPEC, "partition") is not None
