"""Unit tests for Algorithm 1 (iterative shot refinement)."""

import pytest

from repro.fracture.refine import (
    RefineParams,
    _stagnated,
    _state_hash,
    reduce_shot_count,
    refine,
)
from repro.geometry.rect import Rect


class TestParams:
    def test_invalid_nmax(self):
        with pytest.raises(ValueError):
            RefineParams(nmax=-1)

    def test_invalid_nh(self):
        with pytest.raises(ValueError):
            RefineParams(nh=0)


class TestStagnation:
    def test_not_enough_history(self):
        assert not _stagnated([1.0, 1.0], nh=3)

    def test_improving_history(self):
        assert not _stagnated([5.0, 4.0, 3.0, 2.0], nh=3)

    def test_flat_history(self):
        assert _stagnated([2.0, 2.0, 2.0, 2.0], nh=3)

    def test_slow_improvement_counts_as_stagnant(self):
        assert _stagnated([2.0, 2.0 - 1e-8, 2.0 - 2e-8, 2.0 - 3e-8], nh=3)


class TestStateHash:
    def test_order_insensitive(self):
        a = [Rect(0, 0, 10, 10), Rect(5, 5, 20, 20)]
        b = list(reversed(a))
        assert _state_hash(a, 1.0) == _state_hash(b, 1.0)

    def test_quantization_absorbs_float_noise(self):
        a = [Rect(0, 0, 10, 10)]
        b = [Rect(1e-9, 0, 10, 10 - 1e-9)]
        assert _state_hash(a, 1.0) == _state_hash(b, 1.0)

    def test_distinct_states_differ(self):
        assert _state_hash([Rect(0, 0, 10, 10)], 1.0) != _state_hash(
            [Rect(1, 0, 11, 10)], 1.0
        )


class TestRefine:
    def test_fixes_oversized_initial_shot(self, rect_shape, spec):
        shots, trace = refine(
            rect_shape, spec, [Rect(-4, -4, 64, 44)], RefineParams(nmax=120)
        )
        assert trace.converged
        assert len(shots) == 1

    def test_fills_coverage_gap_by_adding(self, rect_shape, spec):
        shots, trace = refine(
            rect_shape, spec, [Rect(-2, -2, 28, 42)], RefineParams(nmax=200)
        )
        assert trace.converged
        assert trace.shots_added >= 1 or len(shots) >= 1

    def test_zero_budget_returns_input(self, rect_shape, spec):
        initial = [Rect(0, 0, 60, 40)]
        shots, trace = refine(rect_shape, spec, initial, RefineParams(nmax=0))
        assert shots == initial
        assert trace.iterations == 0

    def test_already_feasible_stops_immediately(self, rect_shape, spec):
        shots, trace = refine(
            rect_shape, spec, [Rect(-1, -1, 61, 41)], RefineParams(nmax=50)
        )
        assert trace.converged
        assert trace.iterations == 1

    def test_trace_histories_recorded(self, rect_shape, spec):
        _, trace = refine(
            rect_shape, spec, [Rect(-4, -4, 64, 44)], RefineParams(nmax=120)
        )
        assert len(trace.cost_history) == trace.iterations
        assert len(trace.failing_history) == trace.iterations
        assert trace.failing_history[-1] == 0

    def test_unconverged_returns_best_seen(self, blob_shape, spec):
        """With a tiny budget the result is the best snapshot, which can
        be no worse than the initial solution."""
        from repro.fracture.graph_color import approximate_fracture
        from repro.mask.constraints import check_solution

        initial, _ = approximate_fracture(blob_shape, spec)
        initial_failing = check_solution(initial, blob_shape, spec).total_failing
        shots, trace = refine(blob_shape, spec, initial, RefineParams(nmax=12))
        final_failing = check_solution(shots, blob_shape, spec).total_failing
        assert final_failing <= initial_failing


class TestReduceShotCount:
    def test_removes_redundant_shot(self, rect_shape, spec):
        shots = [Rect(-1, -1, 61, 41), Rect(10, 5, 45, 35)]
        reduced, removed = reduce_shot_count(rect_shape, spec, shots)
        assert removed >= 1
        assert len(reduced) == 1

    def test_keeps_necessary_shots(self, rect_shape, spec):
        shots = [Rect(-1, -1, 61, 41)]
        reduced, removed = reduce_shot_count(rect_shape, spec, shots)
        assert reduced == shots and removed == 0

    def test_result_remains_feasible(self, l_shape, spec):
        from repro.mask.constraints import check_solution
        from repro.fracture.refine import refine as run_refine

        initial = [Rect(-2, -2, 82, 32), Rect(-2, -2, 42, 72), Rect(5, 5, 40, 40)]
        shots, trace = run_refine(l_shape, spec, initial, RefineParams(nmax=200))
        if trace.converged:
            reduced, _ = reduce_shot_count(l_shape, spec, shots)
            assert check_solution(reduced, l_shape, spec).feasible
            assert len(reduced) <= len(shots)
