"""Unit tests for shot corner point extraction (paper §3)."""

import math

import pytest

from repro.fracture.corner_points import (
    CornerType,
    ShotCornerPoint,
    cluster_corner_points,
    corner_type_from_normal,
    extract_corner_points,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

LTH = 14.0
SHIFT = LTH / math.sqrt(2.0)


class TestCornerType:
    def test_words(self):
        assert CornerType.BOTTOM_LEFT.is_left and CornerType.BOTTOM_LEFT.is_bottom
        assert not CornerType.TOP_RIGHT.is_left and not CornerType.TOP_RIGHT.is_bottom

    def test_diagonal_opposites(self):
        assert CornerType.BOTTOM_LEFT.diagonal_opposite is CornerType.TOP_RIGHT
        assert CornerType.TOP_LEFT.diagonal_opposite is CornerType.BOTTOM_RIGHT

    def test_from_normal_quadrants(self):
        assert corner_type_from_normal(-1, -1) is CornerType.BOTTOM_LEFT
        assert corner_type_from_normal(1, -1) is CornerType.BOTTOM_RIGHT
        assert corner_type_from_normal(-1, 1) is CornerType.TOP_LEFT
        assert corner_type_from_normal(1, 1) is CornerType.TOP_RIGHT


class TestExtraction:
    def test_invalid_lth(self):
        square = Polygon([(0, 0), (60, 0), (60, 60), (0, 60)])
        with pytest.raises(ValueError):
            extract_corner_points(square, 0.0)

    def test_square_gives_four_clustered_corners(self):
        square = Polygon([(0, 0), (60, 0), (60, 60), (0, 60)])
        points = extract_corner_points(square, LTH)
        assert len(points) == 4
        assert {p.ctype for p in points} == set(CornerType)

    def test_square_corner_points_outside_shape(self):
        square = Polygon([(0, 0), (60, 0), (60, 60), (0, 60)])
        for scp in extract_corner_points(square, LTH):
            assert not square.contains_point(scp.point)

    def test_bottom_left_position(self):
        square = Polygon([(0, 0), (60, 0), (60, 60), (0, 60)])
        bl = [p for p in extract_corner_points(square, LTH)
              if p.ctype is CornerType.BOTTOM_LEFT][0]
        # Cluster centroid of the two shifted endpoints near (0,0).
        assert abs(bl.point.x + SHIFT / 2.0) < 0.5
        assert abs(bl.point.y + SHIFT / 2.0) < 0.5

    def test_short_segments_skipped(self):
        # A tiny jog shorter than L_th must not spawn corner points.
        poly = Polygon(
            [(0, 0), (60, 0), (60, 30), (57, 30), (57, 33), (60, 33),
             (60, 60), (0, 60)]
        )
        points = extract_corner_points(poly, LTH)
        square_points = extract_corner_points(
            Polygon([(0, 0), (60, 0), (60, 60), (0, 60)]), LTH
        )
        assert len(points) <= len(square_points) + 2

    def test_diagonal_segment_spawns_series(self):
        # 45° hypotenuse of length ~85 → about 6 points at L_th spacing.
        tri = Polygon([(0, 0), (60, 0), (60, 60)])
        points = extract_corner_points(tri, LTH)
        diag_points = [p for p in points if p.ctype is CornerType.TOP_LEFT]
        assert 4 <= len(diag_points) <= 8

    def test_diagonal_points_shifted_outward(self):
        tri = Polygon([(0, 0), (60, 0), (60, 60)])
        for scp in extract_corner_points(tri, LTH):
            assert not tri.contains_point(scp.point)


class TestClustering:
    def test_same_type_close_points_merge(self):
        points = [
            ShotCornerPoint(Point(0, 0), CornerType.BOTTOM_LEFT),
            ShotCornerPoint(Point(1, 1), CornerType.BOTTOM_LEFT),
        ]
        merged = cluster_corner_points(points, LTH)
        assert len(merged) == 1
        assert merged[0].point == Point(0.5, 0.5)

    def test_different_types_never_merge(self):
        points = [
            ShotCornerPoint(Point(0, 0), CornerType.BOTTOM_LEFT),
            ShotCornerPoint(Point(1, 1), CornerType.TOP_RIGHT),
        ]
        assert len(cluster_corner_points(points, LTH)) == 2

    def test_far_points_stay_separate(self):
        points = [
            ShotCornerPoint(Point(0, 0), CornerType.BOTTOM_LEFT),
            ShotCornerPoint(Point(100, 0), CornerType.BOTTOM_LEFT),
        ]
        assert len(cluster_corner_points(points, LTH)) == 2

    def test_chain_clusters_transitively(self):
        # a-b close, b-c close, a-c not: single-link merges all three.
        points = [
            ShotCornerPoint(Point(0, 0), CornerType.TOP_LEFT),
            ShotCornerPoint(Point(10, 0), CornerType.TOP_LEFT),
            ShotCornerPoint(Point(20, 0), CornerType.TOP_LEFT),
        ]
        merged = cluster_corner_points(points, LTH)
        assert len(merged) == 1
        assert merged[0].point == Point(10, 0)

    def test_output_sorted_deterministically(self):
        points = [
            ShotCornerPoint(Point(50, 0), CornerType.TOP_LEFT),
            ShotCornerPoint(Point(0, 0), CornerType.BOTTOM_LEFT),
        ]
        merged = cluster_corner_points(points, 1.0)
        assert merged[0].point.x <= merged[1].point.x
