"""Unit tests for the refinement working state."""

import numpy as np
import pytest

from repro.fracture.state import RefinementState
from repro.geometry.rect import Rect


@pytest.fixture()
def state(rect_shape, spec) -> RefinementState:
    return RefinementState(rect_shape, spec, [Rect(0, 0, 60, 40)])


class TestReports:
    def test_initial_report_consistent_with_check(self, state, rect_shape, spec):
        from repro.mask.constraints import check_solution

        internal = state.report()
        external = check_solution(state.shots, rect_shape, spec)
        assert internal.total_failing == external.total_failing
        assert np.isclose(internal.cost, external.cost)

    def test_window_cost_matches_global(self, state, spec):
        full_window = (slice(0, state.imap.total.shape[0]),
                       slice(0, state.imap.total.shape[1]))
        cost = state.window_cost(full_window, state.imap.total)
        assert np.isclose(cost, state.report().cost)


class TestEdgeMoves:
    def test_invalid_move_returns_none(self, state, spec):
        # Shrinking a min-size shot below Lmin is rejected.
        state.shots[0] = Rect(0, 0, spec.lmin, 40)
        state.imap.rebuild(state.shots)
        assert state.edge_move_delta_cost(0, "left", spec.pitch) is None

    def test_delta_cost_matches_committed_cost(self, state):
        before = state.report().cost
        delta = state.edge_move_delta_cost(0, "right", 1.0)
        assert delta is not None
        assert state.apply_edge_move(0, "right", 1.0)
        after = state.report().cost
        assert np.isclose(after - before, delta, atol=1e-6)

    def test_apply_edge_move_updates_shot(self, state):
        original = state.shots[0]
        state.apply_edge_move(0, "top", 1.0)
        assert state.shots[0].ytr == original.ytr + 1.0

    def test_apply_invalid_move_refused(self, state, spec):
        state.shots[0] = Rect(0, 0, spec.lmin, 40)
        state.imap.rebuild(state.shots)
        assert not state.apply_edge_move(0, "left", spec.pitch)


class TestMutators:
    def test_add_and_remove_roundtrip(self, state):
        baseline = state.imap.total.copy()
        extra = Rect(10, 10, 30, 30)
        state.add_shot(extra)
        assert len(state.shots) == 2
        removed = state.remove_shot(1)
        assert removed == extra
        assert np.max(np.abs(state.imap.total - baseline)) < 1e-9

    def test_replace_shot(self, state):
        new = Rect(5, 5, 55, 35)
        state.replace_shot(0, new)
        assert state.shots[0] == new
        reference = RefinementState(state.shape, state.spec, [new])
        assert np.max(np.abs(state.imap.total - reference.imap.total)) < 1e-7

    def test_snapshot_restore(self, state):
        snapshot = state.snapshot()
        state.apply_edge_move(0, "right", 1.0)
        state.add_shot(Rect(10, 10, 30, 30))
        state.restore(snapshot)
        assert state.shots == snapshot
        reference = RefinementState(state.shape, state.spec, snapshot)
        assert np.max(np.abs(state.imap.total - reference.imap.total)) < 1e-9
