"""Equivalence gates for the seam-band cost-field crop.

A region-restricted ``RefinementState`` under the numpy backend keeps
its per-iteration cost/active fields cropped to the active-mask
bounding box; under the scalar backend it works on the full grid.  The
signed weight is exactly zero outside the active mask, so everything
observable — failure masks, candidate gathering, candidate prices, and
the shots a stitch produces — must agree across the two layouts.  Cost
*sums* may differ in final ULPs (different pairwise-summation grouping
over the same nonzero values), which is why the gate is at the
shot/decision level with exact equality and at the scalar-cost level
with 1e-12 closeness.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.fracture.graph_color import approximate_fracture
from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.fracture.refine import RefineParams
from repro.fracture.state import RefinementState
from repro.fracture.windowed import WindowedFracturer
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.kernels import use_backend
from repro.mask.shape import MaskShape


def _band_mask(shape, half_width: int = 6) -> np.ndarray:
    ny, nx = shape.grid.shape
    mask = np.zeros((ny, nx), dtype=bool)
    mid = nx // 2
    mask[:, mid - half_width:mid + half_width] = True
    return mask


@pytest.fixture()
def seam_states(l_shape, spec):
    shots, _ = approximate_fracture(l_shape, spec)
    mask = _band_mask(l_shape)
    with use_backend("numpy"):
        cropped = RefinementState(l_shape, spec, shots, active_mask=mask)
    with use_backend("scalar"):
        full = RefinementState(l_shape, spec, shots, active_mask=mask)
    return cropped, full


class TestCroppedStateMatchesFull:
    def test_crop_engages_only_with_capability(self, seam_states):
        cropped, full = seam_states
        assert cropped._crop is not None
        assert full._crop is None
        r0, r1, c0, c1 = cropped._crop
        assert (r1 - r0) * (c1 - c0) < cropped.pixels.on.size

    def test_reports_identical(self, seam_states):
        cropped, full = seam_states
        rep_c = cropped.report()
        rep_f = full.report()
        assert np.array_equal(rep_c.fail_on, rep_f.fail_on)
        assert np.array_equal(rep_c.fail_off, rep_f.fail_off)
        assert math.isclose(rep_c.cost, rep_f.cost, rel_tol=1e-12, abs_tol=1e-12)

    def test_integral_lookups_identical_inside_mask(self, seam_states):
        cropped, full = seam_states
        ci_c = cropped.cost_integral()
        ci_f = full.cost_integral()
        rng = np.random.default_rng(42)
        ny, nx = cropped.pixels.on.shape
        r0, r1, c0, c1 = cropped._crop
        for _ in range(50):
            y0 = int(rng.integers(0, ny - 1))
            x0 = int(rng.integers(0, nx - 1))
            y1 = int(rng.integers(y0 + 1, ny + 1))
            x1 = int(rng.integers(x0 + 1, nx + 1))
            window = (slice(y0, y1), slice(x0, x1))
            assert cropped.window_cost_from_integral(ci_c, window) == \
                full.window_cost_from_integral(ci_f, window)

    def test_gather_and_prices_identical(self, seam_states):
        cropped, full = seam_states
        ci_c = cropped.cost_integral().copy()
        ai_c = cropped.active_integral().copy()
        ci_f = full.cost_integral().copy()
        ai_f = full.active_integral().copy()
        cands_c = cropped.gather_edge_moves(ci_c)
        cands_f = full.gather_edge_moves(ci_f)
        key = lambda c: (c.index, c.edge, c.delta)
        assert [key(c) for c in cands_c] == [key(c) for c in cands_f]
        with use_backend("numpy"):
            prices_c = cropped.price_edge_moves(cands_c, ci_c, ai_c)
        with use_backend("scalar"):
            prices_f = full.price_edge_moves(cands_f, ci_f, ai_f)
        assert np.array_equal(prices_c, prices_f)


class TestWindowedStitchShotIdentity:
    def test_stitch_identical_across_backends(self, spec):
        # Wide enough for several tiles so the seam-band stitch runs.
        polygon = Polygon(
            [Point(0, 0), Point(500, 0), Point(500, 40), Point(0, 40)]
        )
        bar = MaskShape.from_polygon(
            polygon, pitch=spec.pitch, margin=spec.grid_margin, name="bar"
        )
        results = {}
        for name in ("numpy", "scalar"):
            inner = ModelBasedFracturer(
                config=RefineConfig(params=RefineParams(nmax=6, nh=3))
            )
            windowed = WindowedFracturer(inner, window_nm=150.0)
            with use_backend(name):
                shots = windowed.fracture_shots(bar, spec)
            results[name] = [s.as_tuple() for s in shots]
        assert results["numpy"] == results["scalar"]
