"""Unit tests for compatibility graph construction and stage-1 fracturing."""

import pytest

from repro.fracture.corner_points import CornerType, ShotCornerPoint
from repro.fracture.graph_color import (
    GraphBuildConfig,
    GraphColoringFracturer,
    approximate_fracture,
    build_compatibility_graph,
)
from repro.fracture.graph_color import pair_test_shot as shot_for_pair
from repro.geometry.point import Point

LMIN = 10.0
ALIGN = 7.0


def _scp(x, y, ctype) -> ShotCornerPoint:
    return ShotCornerPoint(Point(x, y), ctype)


class TestTestShotForPair:
    def test_same_type_rejected(self):
        a = _scp(0, 0, CornerType.BOTTOM_LEFT)
        b = _scp(20, 20, CornerType.BOTTOM_LEFT)
        assert shot_for_pair(a, b, LMIN, ALIGN) is None

    def test_diagonal_pair_unique_shot(self):
        a = _scp(0, 0, CornerType.BOTTOM_LEFT)
        b = _scp(30, 20, CornerType.TOP_RIGHT)
        shot = shot_for_pair(a, b, LMIN, ALIGN)
        assert shot is not None and shot.as_tuple() == (0, 0, 30, 20)

    def test_diagonal_pair_wrong_side_rejected(self):
        a = _scp(30, 20, CornerType.BOTTOM_LEFT)
        b = _scp(0, 0, CornerType.TOP_RIGHT)
        assert shot_for_pair(a, b, LMIN, ALIGN) is None

    def test_anti_diagonal_pair(self):
        a = _scp(0, 20, CornerType.TOP_LEFT)
        b = _scp(30, 0, CornerType.BOTTOM_RIGHT)
        shot = shot_for_pair(a, b, LMIN, ALIGN)
        assert shot is not None and shot.as_tuple() == (0, 0, 30, 20)

    def test_diagonal_below_min_size_rejected(self):
        a = _scp(0, 0, CornerType.BOTTOM_LEFT)
        b = _scp(8, 20, CornerType.TOP_RIGHT)
        assert shot_for_pair(a, b, LMIN, ALIGN) is None

    def test_left_pair_min_width_shot(self):
        a = _scp(0, 0, CornerType.BOTTOM_LEFT)
        b = _scp(1, 40, CornerType.TOP_LEFT)
        shot = shot_for_pair(a, b, LMIN, ALIGN)
        assert shot is not None
        assert shot.width == LMIN
        assert shot.xbl == pytest.approx(0.5)

    def test_left_pair_misaligned_rejected(self):
        a = _scp(0, 0, CornerType.BOTTOM_LEFT)
        b = _scp(20, 40, CornerType.TOP_LEFT)
        assert shot_for_pair(a, b, LMIN, ALIGN) is None

    def test_bottom_pair_min_height_shot(self):
        a = _scp(0, 0, CornerType.BOTTOM_LEFT)
        b = _scp(40, 1, CornerType.BOTTOM_RIGHT)
        shot = shot_for_pair(a, b, LMIN, ALIGN)
        assert shot is not None
        assert shot.height == LMIN
        assert shot.ybl == pytest.approx(0.5)

    def test_top_pair(self):
        a = _scp(0, 40, CornerType.TOP_LEFT)
        b = _scp(40, 40, CornerType.TOP_RIGHT)
        shot = shot_for_pair(a, b, LMIN, ALIGN)
        assert shot is not None
        assert shot.ytr == pytest.approx(40.0)
        assert shot.height == LMIN

    def test_side_pair_too_short_rejected(self):
        a = _scp(0, 0, CornerType.BOTTOM_LEFT)
        b = _scp(5, 0, CornerType.BOTTOM_RIGHT)
        assert shot_for_pair(a, b, LMIN, ALIGN) is None

    def test_symmetry_in_argument_order(self):
        a = _scp(0, 0, CornerType.BOTTOM_LEFT)
        b = _scp(30, 20, CornerType.TOP_RIGHT)
        assert shot_for_pair(a, b, LMIN, ALIGN) == shot_for_pair(
            b, a, LMIN, ALIGN
        )


class TestGraphConstruction:
    def test_rect_target_complete_graph(self, rect_shape, spec):
        from repro.fracture.corner_points import extract_corner_points
        from repro.geometry.rdp import rdp_simplify

        simplified = rdp_simplify(rect_shape.polygon, spec.gamma)
        corner_points = extract_corner_points(simplified, spec.lth)
        graph = build_compatibility_graph(corner_points, rect_shape, spec)
        assert graph.n == 4
        assert graph.edge_count() == 6  # all pairs compatible

    def test_overlap_rule_blocks_cross_notch_pairs(self, l_shape, spec):
        """Corner points across the L's notch must not form one shot."""
        from repro.fracture.corner_points import extract_corner_points
        from repro.geometry.rdp import rdp_simplify

        simplified = rdp_simplify(l_shape.polygon, spec.gamma)
        corner_points = extract_corner_points(simplified, spec.lth)
        graph = build_compatibility_graph(corner_points, l_shape, spec)
        # The far bottom-right corner and the top-left of the vertical arm
        # would span the notch; that pair must be absent.
        bl_arm = next(
            i for i, c in enumerate(corner_points)
            if c.ctype is CornerType.BOTTOM_RIGHT and c.point.x > 70
        )
        tl_arm = next(
            i for i, c in enumerate(corner_points)
            if c.ctype is CornerType.TOP_LEFT and c.point.y > 60
        )
        assert not graph.has_edge(bl_arm, tl_arm)


class TestApproximateFracture:
    def test_rectangle_single_shot(self, rect_shape, spec):
        shots, diagnostics = approximate_fracture(rect_shape, spec)
        assert len(shots) == 1
        assert diagnostics["cliques"] == 1

    def test_l_shape_few_shots(self, l_shape, spec):
        shots, diagnostics = approximate_fracture(l_shape, spec)
        assert 2 <= len(shots) <= 4
        assert diagnostics["corner_points"] >= 6

    def test_shots_meet_min_size(self, blob_shape, spec):
        shots, _ = approximate_fracture(blob_shape, spec)
        assert shots, "stage 1 must produce shots"
        assert all(s.meets_min_size(spec.lmin - 1e-9) for s in shots)

    def test_fracturer_interface(self, rect_shape, spec):
        result = GraphColoringFracturer().fracture(rect_shape, spec)
        assert result.method == "GC-INIT"
        assert result.shot_count == 1
        assert "corner_points" in result.extra

    def test_coloring_strategy_configurable(self, blob_shape, spec):
        a, _ = approximate_fracture(
            blob_shape, spec, GraphBuildConfig(coloring_strategy="given")
        )
        b, _ = approximate_fracture(
            blob_shape, spec, GraphBuildConfig(coloring_strategy="dsatur")
        )
        assert a and b  # both valid; counts may differ
