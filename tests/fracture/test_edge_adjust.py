"""Unit tests for greedy shot edge adjustment (paper §4.1)."""

import pytest

from repro.fracture.edge_adjust import edge_segment, greedy_shot_edge_adjustment
from repro.fracture.state import RefinementState
from repro.geometry.rect import Rect


class TestEdgeSegment:
    def test_segments_are_degenerate_rects(self):
        shot = Rect(0, 0, 10, 20)
        assert edge_segment(shot, "left").as_tuple() == (0, 0, 0, 20)
        assert edge_segment(shot, "right").as_tuple() == (10, 0, 10, 20)
        assert edge_segment(shot, "bottom").as_tuple() == (0, 0, 10, 0)
        assert edge_segment(shot, "top").as_tuple() == (0, 20, 10, 20)

    def test_unknown_edge(self):
        with pytest.raises(ValueError):
            edge_segment(Rect(0, 0, 1, 1), "middle")


class TestAdjustment:
    def test_oversized_shot_shrinks_toward_target(self, rect_shape, spec):
        """A shot 3nm too big on every side must be pulled inward."""
        state = RefinementState(rect_shape, spec, [Rect(-3, -3, 63, 43)])
        cost_before = state.report().cost
        for _ in range(8):
            moved = greedy_shot_edge_adjustment(state, state.report())
            if moved == 0:
                break
        cost_after = state.report().cost
        assert cost_after < cost_before
        shot = state.shots[0]
        # Feasible fixed point: an edge may rest anywhere within the
        # γ band around the target boundary.
        assert -2.5 <= shot.xbl <= 2.5 and 57.5 <= shot.xtr <= 62.5

    def test_converges_to_zero_failing_on_rect(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [Rect(-3, -3, 63, 43)])
        for _ in range(30):
            report = state.report()
            if report.total_failing == 0:
                break
            greedy_shot_edge_adjustment(state, report)
        assert state.report().total_failing == 0

    def test_no_moves_when_feasible_and_tight(self, rect_shape, spec):
        # A converged configuration should offer no improving move (or
        # only marginal ones); the pass must terminate.
        state = RefinementState(rect_shape, spec, [Rect(-3, -3, 63, 43)])
        for _ in range(40):
            report = state.report()
            if report.total_failing == 0:
                break
            greedy_shot_edge_adjustment(state, report)
        moved = greedy_shot_edge_adjustment(state, state.report())
        assert moved <= 2

    def test_min_size_never_violated(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [Rect(0, 0, 11, 11)])
        for _ in range(10):
            greedy_shot_edge_adjustment(state, state.report())
        assert all(s.meets_min_size(spec.lmin) for s in state.shots)

    def test_blocking_limits_moves_on_small_shot(self, rect_shape, spec):
        """All four edges of a small shot are within 2σ of each other, so
        at most one edge may move per iteration."""
        state = RefinementState(rect_shape, spec, [Rect(20, 10, 31, 21)])
        moved = greedy_shot_edge_adjustment(state, state.report())
        assert moved <= 1

    def test_without_report_skip(self, rect_shape, spec):
        """Passing no report disables the failing-window skip but still
        yields only improving moves."""
        state = RefinementState(rect_shape, spec, [Rect(-3, -3, 63, 43)])
        before = state.report().cost
        greedy_shot_edge_adjustment(state)
        assert state.report().cost <= before
