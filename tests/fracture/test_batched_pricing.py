"""Equivalence tests for the batched candidate-move pricing engine.

The batched engine must be a pure performance change: every Δcost it
produces matches the scalar per-candidate oracle to well below the
1e-12 improvement epsilon, the profile cache must never change I_tot,
and the interval-based blocked-zone index must accept exactly the moves
the brute-force scan accepted.
"""

import numpy as np
import pytest

from repro.ebeam.intensity_map import profile_caching
from repro.fracture.edge_adjust import (
    BlockedZoneIndex,
    edge_segment,
    greedy_shot_edge_adjustment,
    pricing_engine,
)
from repro.fracture.graph_color import approximate_fracture
from repro.fracture.refine import RefineParams, refine
from repro.fracture.state import RefinementState
from repro.geometry.rect import Rect
from repro.obs import TelemetryRecorder, recording


@pytest.fixture()
def fractured_state(l_shape, spec) -> RefinementState:
    shots, _ = approximate_fracture(l_shape, spec)
    return RefinementState(l_shape, spec, shots)


class TestBatchedMatchesScalar:
    def test_per_candidate_within_1e12(self, fractured_state):
        state = fractured_state
        cost_integral = state.cost_integral().copy()
        active_integral = state.active_integral().copy()
        candidates = state.gather_edge_moves(cost_integral)
        assert candidates, "expected candidates on an unrefined fracture"
        batched = state.price_edge_moves(candidates, cost_integral, active_integral)
        for candidate, priced in zip(candidates, batched):
            oracle = state.edge_move_delta_cost(
                candidate.index,
                candidate.edge,
                candidate.delta,
                cost_integral,
                active_integral,
            )
            assert oracle is not None
            assert abs(priced - oracle) <= 1e-12

    def test_property_style_over_shapes(self, rect_shape, l_shape, blob_shape, spec):
        # Same property on three target geometries, after a few greedy
        # passes so the shot list is no longer the pristine fracture.
        for shape in (rect_shape, l_shape, blob_shape):
            shots, _ = approximate_fracture(shape, spec)
            state = RefinementState(shape, spec, shots)
            for _ in range(3):
                greedy_shot_edge_adjustment(state)
            cost_integral = state.cost_integral().copy()
            active_integral = state.active_integral().copy()
            candidates = state.gather_edge_moves(cost_integral)
            batched = state.price_edge_moves(
                candidates, cost_integral, active_integral
            )
            for candidate, priced in zip(candidates, batched):
                oracle = state.edge_move_delta_cost(
                    candidate.index,
                    candidate.edge,
                    candidate.delta,
                    cost_integral,
                    active_integral,
                )
                assert abs(priced - oracle) <= 1e-12

    def test_crop_matches_uncropped_scoring(self, fractured_state):
        # Active-window cropping discards only pixels whose clamped cost
        # is exactly zero on both sides, so it must not move any Δcost by
        # more than accumulated float noise.
        state = fractured_state
        cost_integral = state.cost_integral().copy()
        active_integral = state.active_integral().copy()
        for candidate in state.gather_edge_moves(cost_integral):
            cropped = state.edge_move_delta_cost(
                candidate.index,
                candidate.edge,
                candidate.delta,
                cost_integral,
                active_integral,
            )
            full = state.edge_move_delta_cost(
                candidate.index, candidate.edge, candidate.delta, cost_integral
            )
            assert abs(cropped - full) <= 1e-12


class TestEngineEquivalence:
    def test_batched_and_scalar_runs_are_identical(self, l_shape, spec):
        shots, _ = approximate_fracture(l_shape, spec)
        final_b, trace_b = refine(l_shape, spec, shots, RefineParams(nmax=25))
        with pricing_engine("scalar"):
            final_s, trace_s = refine(l_shape, spec, shots, RefineParams(nmax=25))
        assert trace_b.cost_history == trace_s.cost_history
        assert trace_b.failing_history == trace_s.failing_history
        assert final_b == final_s

    def test_legacy_engine_reaches_same_shot_count(self, l_shape, spec):
        shots, _ = approximate_fracture(l_shape, spec)
        final_b, trace_b = refine(l_shape, spec, shots, RefineParams(nmax=25))
        with profile_caching(False), pricing_engine("legacy"):
            final_l, trace_l = refine(l_shape, spec, shots, RefineParams(nmax=25))
        assert len(final_l) == len(final_b)
        assert trace_l.failing_history == trace_b.failing_history
        np.testing.assert_allclose(
            trace_l.cost_history, trace_b.cost_history, rtol=1e-9
        )


class TestProfileCacheTransparency:
    def test_cache_never_changes_intensity(self, l_shape, spec):
        # A cache hit returns the exact array a fresh evaluation would
        # produce, so cached and uncached refinement runs must agree on
        # every intensity bit, not just approximately.
        shots, _ = approximate_fracture(l_shape, spec)
        cached = RefinementState(l_shape, spec, shots)
        with profile_caching(False):
            uncached = RefinementState(l_shape, spec, shots)
        assert np.array_equal(cached.imap.total, uncached.imap.total)
        for _ in range(5):
            greedy_shot_edge_adjustment(cached)
            greedy_shot_edge_adjustment(uncached)
        assert cached.shots == uncached.shots
        assert np.array_equal(cached.imap.total, uncached.imap.total)

    def test_hit_miss_counters(self, fractured_state):
        state = fractured_state
        recorder = TelemetryRecorder()
        with recording(recorder):
            cost_integral = state.cost_integral().copy()
            active_integral = state.active_integral().copy()
            candidates = state.gather_edge_moves(cost_integral)
            state.price_edge_moves(candidates, cost_integral, active_integral)
            misses_first = recorder.counters.get("cache.profile.misses", 0)
            state.price_edge_moves(candidates, cost_integral, active_integral)
            misses_second = recorder.counters.get("cache.profile.misses", 0)
            hits = recorder.counters.get("cache.profile.hits", 0)
        assert misses_first > 0
        assert misses_second == misses_first  # second sweep is all hits
        assert hits >= 3 * len(candidates)

    def test_eviction_bounds_cache_size(self, l_shape, spec):
        shots, _ = approximate_fracture(l_shape, spec)
        state = RefinementState(l_shape, spec, shots)
        state.imap._profile_cache_limit = 8
        state.imap.clear_profile_cache()
        recorder = TelemetryRecorder()
        with recording(recorder):
            cost_integral = state.cost_integral().copy()
            active_integral = state.active_integral().copy()
            candidates = state.gather_edge_moves(cost_integral)
            state.price_edge_moves(candidates, cost_integral, active_integral)
        assert state.imap.profile_cache_size <= 8
        assert recorder.counters.get("cache.profile.evictions", 0) > 0


class TestBlockedZoneIndex:
    @staticmethod
    def _random_rects(rng, n, span=200.0, size=30.0):
        rects = []
        for _ in range(n):
            x0, y0 = rng.uniform(0.0, span, size=2)
            w, h = rng.uniform(0.5, size, size=2)
            rects.append(Rect(x0, y0, x0 + w, y0 + h))
        return rects

    def test_intersects_matches_brute_force(self):
        rng = np.random.default_rng(11)
        zones = self._random_rects(rng, 40)
        queries = self._random_rects(rng, 200)
        index = BlockedZoneIndex()
        for zone in zones:
            index.add(zone)
        for query in queries:
            brute = any(zone.intersects(query) for zone in zones)
            assert index.intersects(query) == brute

    def test_accepted_move_sets_identical(self, l_shape, spec):
        # Replay the greedy acceptance loop (sorted moves, block-after-
        # accept) with both implementations and require the same set.
        rng = np.random.default_rng(3)
        segments = []
        for shot in self._random_rects(rng, 60):
            for edge in ("left", "right", "bottom", "top"):
                segments.append(edge_segment(shot, edge))
        margin = 2.0 * spec.sigma

        index = BlockedZoneIndex()
        accepted_index = []
        for i, segment in enumerate(segments):
            if not index.intersects(segment):
                accepted_index.append(i)
                index.add(segment.expanded(margin))

        zones: list[Rect] = []
        accepted_brute = []
        for i, segment in enumerate(segments):
            if not any(zone.intersects(segment) for zone in zones):
                accepted_brute.append(i)
                zones.append(segment.expanded(margin))

        assert accepted_index == accepted_brute
