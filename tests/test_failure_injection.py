"""Failure-injection and adversarial-input tests.

The refinement loop, intensity map and checker must degrade gracefully —
never crash, never return silently-wrong verdicts — under inputs a
production flow will eventually produce: shapes hugging the grid edge,
shots far outside the window, empty solutions, coarse grids and
degenerate parameter combinations.
"""

import numpy as np
import pytest

from repro import FractureSpec, MaskShape, ModelBasedFracturer, RefineConfig, check_solution
from repro.ebeam.intensity_map import IntensityMap
from repro.fracture.refine import RefineParams, refine
from repro.fracture.state import RefinementState
from repro.geometry.raster import PixelGrid
from repro.geometry.rect import Rect


class TestGridEdgeConditions:
    def test_shape_touching_grid_border(self, spec):
        """A target flush against the grid edge: P_off context is
        truncated, but nothing may crash and the result must verify."""
        grid = PixelGrid(0.0, 0.0, 1.0, 80, 60)
        mask = np.zeros(grid.shape, dtype=bool)
        mask[0:40, 0:60] = True  # touches two window borders
        shape = MaskShape.from_mask(mask, grid, name="flush")
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            shape, spec
        )
        assert result.shot_count >= 1
        recheck = check_solution(result.shots, shape, spec)
        assert recheck.total_failing == result.report.total_failing

    def test_shot_entirely_off_grid(self, rect_shape, spec):
        imap = IntensityMap(rect_shape.grid, spec.sigma)
        far = Rect(10_000.0, 10_000.0, 10_040.0, 10_040.0)
        imap.add(far)  # window clamps to empty — must be a no-op
        assert np.max(np.abs(imap.total)) == 0.0
        imap.remove(far)
        assert np.max(np.abs(imap.total)) == 0.0

    def test_checker_with_off_grid_shots(self, rect_shape, spec):
        report = check_solution(
            [Rect(-1, -1, 61, 41), Rect(5_000, 5_000, 5_050, 5_050)],
            rect_shape,
            spec,
        )
        assert report.count_on == 0  # target still covered

    def test_refinement_with_stray_shot(self, rect_shape, spec):
        """RemoveShot must be able to discard a shot that helps nothing."""
        shots, trace = refine(
            rect_shape,
            spec,
            [Rect(-1, -1, 61, 41), Rect(200, 200, 240, 240)],
            RefineParams(nmax=60),
        )
        assert trace.converged
        assert check_solution(shots, rect_shape, spec).feasible


class TestDegenerateInputs:
    def test_refine_from_empty_solution(self, rect_shape, spec):
        shots, trace = refine(rect_shape, spec, [], RefineParams(nmax=250))
        report = check_solution(shots, rect_shape, spec)
        # AddShot must bootstrap coverage from nothing.
        assert len(shots) >= 1
        pixels = rect_shape.pixels(spec.gamma)
        assert report.count_on < pixels.count_on

    def test_single_pixel_scale_target(self, spec):
        """A target barely above the minimum shot size."""
        from repro.geometry.polygon import Polygon

        poly = Polygon([(0, 0), (12, 0), (12, 12), (0, 12)])
        shape = MaskShape.from_polygon(poly, margin=spec.grid_margin, name="dot")
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            shape, spec
        )
        assert result.shot_count >= 1
        assert all(s.meets_min_size(spec.lmin - 1e-9) for s in result.shots)

    def test_coarse_pitch_everything(self):
        """The whole pipeline at Δp = 2 nm."""
        from repro.geometry.polygon import Polygon

        spec = FractureSpec(pitch=2.0)
        poly = Polygon([(0, 0), (80, 0), (80, 50), (0, 50)])
        shape = MaskShape.from_polygon(
            poly, pitch=2.0, margin=spec.grid_margin, name="coarse"
        )
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            shape, spec
        )
        assert result.shot_count >= 1

    def test_state_with_no_shots_reports_all_on_failing(self, rect_shape, spec):
        state = RefinementState(rect_shape, spec, [])
        report = state.report()
        assert report.count_on == rect_shape.pixels(spec.gamma).count_on
        assert report.count_off == 0

    def test_lmin_larger_than_feature(self, spec):
        """L_min bigger than the target: every shot must overhang; the
        result may be infeasible but must still verify consistently."""
        from repro.geometry.polygon import Polygon

        big_lmin = FractureSpec(lmin=30.0)
        poly = Polygon([(0, 0), (20, 0), (20, 20), (0, 20)])
        shape = MaskShape.from_polygon(poly, margin=big_lmin.grid_margin)
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            shape, big_lmin
        )
        assert all(s.meets_min_size(30.0 - 1e-9) for s in result.shots)


class TestRandomizedStress:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_random_blob_end_to_end(self, seed, spec):
        """Random curvy blobs: the pipeline never crashes, the verifier
        agrees with the result, min-size always holds."""
        from scipy.ndimage import gaussian_filter

        from repro.bench.shapes import _largest_component, _mrc_clean

        rng = np.random.default_rng(seed)
        grid = PixelGrid(0.0, 0.0, 1.0, 150, 150)
        field = np.zeros(grid.shape)
        field[50:100, 30:120] = 1.0
        noise = gaussian_filter(rng.standard_normal(grid.shape), 6.0)
        noise /= np.abs(noise).max()
        mask = (gaussian_filter(field, 8.0) + 0.3 * noise) > 0.42
        mask = _largest_component(_mrc_clean(mask, 8, 5))
        if not mask.any():
            pytest.skip("seed produced empty shape")
        shape = MaskShape.from_mask(mask, grid, name=f"stress-{seed}")
        result = ModelBasedFracturer(config=RefineConfig.fast()).fracture(
            shape, spec
        )
        recheck = check_solution(result.shots, shape, spec)
        assert recheck.total_failing == result.report.total_failing
        assert all(s.meets_min_size(spec.lmin - 1e-9) for s in result.shots)


class TestTiledFaultInjection:
    """The tiled executor's fault layer under injected failures.

    Deeper coverage lives in tests/fracture/test_runtime.py and
    tests/fracture/test_fault_tolerance.py; this class keeps one
    crash-and-recover and one degrade-don't-die scenario in the
    failure-injection suite CI runs under pytest-timeout.
    """

    @pytest.fixture(scope="class")
    def two_bars(self):
        grid = PixelGrid(0.0, 0.0, 1.0, 560, 140)
        mask = np.zeros(grid.shape, dtype=bool)
        mask[55:95, 45:260] = True
        mask[55:95, 300:515] = True
        return MaskShape.from_mask(mask, grid, name="two-bars")

    def _windowed(self, runtime=None):
        from repro.fracture.refine import RefineParams
        from repro.fracture.windowed import WindowedFracturer

        inner = ModelBasedFracturer(
            config=RefineConfig(params=RefineParams(nmax=100, nh=3))
        )
        return WindowedFracturer(
            inner, window_nm=250.0, workers=1, runtime=runtime
        )

    def test_injected_crash_recovers_bit_identically(self, two_bars, spec):
        from repro.fracture.runtime import FaultPlan, RetryPolicy, RuntimePolicy

        clean = self._windowed().fracture_shots(two_bars, spec)
        runtime = RuntimePolicy(
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0, backoff_cap_s=0.0),
            fault_plan=FaultPlan.parse(["t0,0:crash", "t1,0:raise"]),
        )
        faulted = self._windowed(runtime).fracture_shots(two_bars, spec)
        assert faulted == clean

    def test_persistent_failure_degrades_not_dies(self, two_bars, spec):
        from repro.fracture.runtime import FaultPlan, RetryPolicy, RuntimePolicy

        runtime = RuntimePolicy(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, backoff_cap_s=0.0),
            fault_plan=FaultPlan.parse(["t1,0:raise:99"]),
        )
        fracturer = self._windowed(runtime)
        shots = fracturer.fracture_shots(two_bars, spec)
        assert shots
        assert fracturer._last_extra["fallback_tiles"] == ["t1,0"]
        report = check_solution(shots, two_bars, spec)
        # The partition fallback still covers its tile: failures, if
        # any, stay a sliver of the target.
        pixels = two_bars.pixels(spec.gamma)
        assert report.count_on <= 0.02 * pixels.count_on
