"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_requires_table(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_spec_arguments_parsed(self):
        args = build_parser().parse_args(
            ["fracture", "--sigma", "5.0", "--gamma", "1.0"]
        )
        assert args.sigma == 5.0 and args.gamma == 1.0

    def test_unknown_method_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fracture", "--method", "magic"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["fracture", "--workers", "0"],
            ["fracture", "--workers", "-2"],
            ["fracture", "--workers", "two"],
            ["fracture", "--window-nm", "0"],
            ["fracture", "--window-nm", "-5"],
            ["mdp", "clips.json", "--workers", "0"],
            ["mdp", "clips.json", "--window-nm", "-1"],
        ],
    )
    def test_invalid_window_and_workers_rejected_at_parse(self, argv, capsys):
        """Bad --workers/--window-nm fail in argparse with a friendly
        message, not a ValueError traceback from the constructor."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        err = capsys.readouterr().err
        assert "must be" in err or "expected a" in err

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit, match="--resume requires --checkpoint"):
            main(["fracture", "--clip", "ILT-1", "--window-nm", "300", "--resume"])

    def test_runtime_flags_require_window(self, capsys):
        with pytest.raises(SystemExit, match="--window-nm"):
            main(["fracture", "--clip", "ILT-1", "--checkpoint", "ckpt"])

    def test_bad_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit, match="bad fault spec"):
            main(
                [
                    "fracture", "--clip", "ILT-1", "--window-nm", "300",
                    "--inject-fault", "t0,0:explode",
                ]
            )


class TestCommands:
    def test_generate_writes_clip_files(self, tmp_path, capsys):
        assert main(["generate", "--output", str(tmp_path)]) == 0
        ilt = json.loads((tmp_path / "ilt_suite.clips.json").read_text())
        assert len(ilt["clips"]) == 10
        known = json.loads((tmp_path / "known_optimal.clips.json").read_text())
        assert len(known["clips"]) == 10

    def test_figure_rendering(self, tmp_path, capsys):
        out = tmp_path / "fig4.svg"
        assert main(["figure", "4", "--output", str(out)]) == 0
        assert out.read_text().startswith("<svg")

    def test_fracture_clip_file_roundtrip(self, tmp_path, capsys):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        code = main(
            [
                "fracture",
                "--method", "partition",
                "--clip-file", str(tmp_path / "clips.json"),
                "--output", str(tmp_path / "out"),
                "--svg", str(tmp_path / "svg"),
            ]
        )
        assert code == 0
        solution = json.loads((tmp_path / "out" / "sq.solution.json").read_text())
        assert solution["metadata"]["method"] == "PARTITION"
        assert (tmp_path / "svg" / "sq.svg").exists()
        printed = capsys.readouterr().out
        assert "PARTITION" in printed

    def test_fracture_unknown_clip_name(self, tmp_path):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        with pytest.raises(SystemExit):
            main(
                [
                    "fracture",
                    "--clip-file", str(tmp_path / "clips.json"),
                    "--clip", "nope",
                ]
            )


class TestVerifyCommand:
    def _clip_and_solution(self, tmp_path):
        from repro.geometry.polygon import Polygon
        from repro.geometry.rect import Rect
        from repro.mask.constraints import FractureSpec
        from repro.mask.io import save_clips, save_solution

        poly = Polygon([(0, 0), (60, 0), (60, 40), (0, 40)])
        clip_file = tmp_path / "clips.json"
        save_clips({"sq": poly}, clip_file)
        spec = FractureSpec()
        good = tmp_path / "good.json"
        save_solution([Rect(-1, -1, 61, 41)], spec, good, clip_name="sq")
        bad = tmp_path / "bad.json"
        save_solution([Rect(10, 10, 30, 30)], spec, bad, clip_name="sq")
        return clip_file, good, bad

    def test_verify_clean_solution(self, tmp_path, capsys):
        clip_file, good, _ = self._clip_and_solution(tmp_path)
        code = main(["verify", str(good), "--clip-file", str(clip_file)])
        assert code == 0
        assert "CD-clean" in capsys.readouterr().out

    def test_verify_bad_solution_nonzero_exit(self, tmp_path, capsys):
        clip_file, _, bad = self._clip_and_solution(tmp_path)
        code = main(["verify", str(bad), "--clip-file", str(clip_file)])
        assert code == 1
        assert "failing pixels" in capsys.readouterr().out

    def test_verify_unknown_clip(self, tmp_path):
        clip_file, good, _ = self._clip_and_solution(tmp_path)
        with pytest.raises(SystemExit):
            main(["verify", str(good), "--clip-file", str(clip_file),
                  "--clip", "nope"])


class TestGdsExport:
    def test_fracture_writes_gds(self, tmp_path, capsys):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        code = main(
            ["fracture", "--method", "partition",
             "--clip-file", str(tmp_path / "clips.json"),
             "--gds", str(tmp_path / "gds")]
        )
        assert code == 0
        from repro.mask.gds import read_gds

        cell = read_gds(tmp_path / "gds" / "sq.gds")
        assert len(cell.targets) == 1
        assert len(cell.shots) >= 1


class TestTelemetry:
    def _fracture_with_telemetry(self, tmp_path, telemetry_name):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        telemetry = tmp_path / telemetry_name
        code = main(
            ["fracture", "--method", "partition",
             "--clip-file", str(tmp_path / "clips.json"),
             "--telemetry", str(telemetry)]
        )
        assert code == 0
        return telemetry

    def test_fracture_writes_manifest_spans_convergence(self, tmp_path, capsys):
        telemetry = self._fracture_with_telemetry(tmp_path, "out.json")
        assert "wrote telemetry" in capsys.readouterr().out
        payload = json.loads(telemetry.read_text())
        assert payload["schema"] == "repro.obs/v1"
        params = payload["manifest"]["params"]
        assert params["sigma"] == 6.25 and params["lmin"] == 10.0
        names = {node["name"] for node in _walk_spans(payload["spans"])}
        assert "fracture" in names and "verify" in names
        assert payload["counters"]["fracture.shapes"] == 1

    def test_fracture_with_refinement_records_convergence(self, tmp_path, capsys):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        telemetry = tmp_path / "ours.json"
        code = main(
            ["fracture", "--clip-file", str(tmp_path / "clips.json"),
             "--telemetry", str(telemetry)]
        )
        assert code == 0
        payload = json.loads(telemetry.read_text())
        records = payload["convergence"]
        assert records
        assert {"iteration", "cost", "failing", "shots", "operator"} <= set(
            records[0]
        )

    def test_trace_summarize_prints_phase_breakdown(self, tmp_path, capsys):
        telemetry = self._fracture_with_telemetry(tmp_path, "out.json")
        capsys.readouterr()
        assert main(["trace", "summarize", str(telemetry)]) == 0
        out = capsys.readouterr().out
        assert "per-phase breakdown" in out
        assert "fracture" in out
        assert "counters:" in out

    def test_trace_summarize_jsonl(self, tmp_path, capsys):
        telemetry = self._fracture_with_telemetry(tmp_path, "out.jsonl")
        capsys.readouterr()
        assert main(["trace", "summarize", str(telemetry)]) == 0
        assert "per-phase breakdown" in capsys.readouterr().out

    def test_trace_summarize_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "summarize", str(tmp_path / "absent.json")])

    def test_mdp_telemetry_with_workers(self, tmp_path, capsys):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        clips = {
            "a": Polygon([(0, 0), (50, 0), (50, 30), (0, 30)]),
            "b": Polygon([(0, 0), (30, 0), (30, 60), (0, 60)]),
        }
        save_clips(clips, tmp_path / "clips.json")
        telemetry = tmp_path / "mdp.json"
        code = main(
            ["mdp", str(tmp_path / "clips.json"), "--method", "partition",
             "--workers", "2", "--telemetry", str(telemetry)]
        )
        assert code in (0, 1)
        payload = json.loads(telemetry.read_text())
        assert payload["counters"]["fracture.shapes"] == 2
        names = {node["name"] for node in _walk_spans(payload["spans"])}
        assert "mdp.batch" in names
        assert any(name.startswith("worker:") for name in names)


def _walk_spans(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk_spans(child)


class TestMdpCommand:
    def _clip_file(self, tmp_path):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        clips = {
            "a": Polygon([(0, 0), (50, 0), (50, 30), (0, 30)]),
            "b": Polygon([(0, 0), (30, 0), (30, 60), (0, 60)]),
        }
        path = tmp_path / "clips.json"
        save_clips(clips, path)
        return path

    def test_batch_run(self, tmp_path, capsys):
        clip_file = self._clip_file(tmp_path)
        # Exit code reflects feasibility, which is marginal for exact-fit
        # partition shots; the batch mechanics are what is under test.
        code = main(
            ["mdp", str(clip_file), "--method", "partition",
             "--output", str(tmp_path / "out")]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "batch: " in out and "2 shapes" in out
        assert (tmp_path / "out" / "a.solution.json").exists()

    def test_baseline_economics(self, tmp_path, capsys):
        clip_file = self._clip_file(tmp_path)
        code = main(
            ["mdp", str(clip_file), "--method", "partition",
             "--baseline", "partition"]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "vs partition:" in out

    def test_parallel_matches_serial_output(self, tmp_path, capsys):
        clip_file = self._clip_file(tmp_path)
        serial = main(["mdp", str(clip_file), "--method", "partition"])
        serial_out = capsys.readouterr().out
        parallel = main(
            ["mdp", str(clip_file), "--method", "partition", "--workers", "2"]
        )
        parallel_out = capsys.readouterr().out
        assert serial == parallel
        assert serial_out.splitlines()[-1] == parallel_out.splitlines()[-1]


class TestStreamFlag:
    def _clips(self, tmp_path):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        return tmp_path / "clips.json"

    def test_fracture_stream_is_a_parseable_bracketed_stream(
        self, tmp_path, capsys
    ):
        from repro.obs import read_stream

        stream = tmp_path / "run.jsonl"
        code = main(
            ["fracture", "--method", "partition",
             "--clip-file", str(self._clips(tmp_path)),
             "--stream", str(stream)]
        )
        assert code == 0
        assert "wrote telemetry stream" in capsys.readouterr().out
        records = read_stream(stream)
        assert records[0]["type"] == "stream_header"
        assert records[-1]["type"] == "stream_end"
        assert records[-1]["status"] == "ok"
        types = {r["type"] for r in records}
        assert {"manifest", "span_open", "span_close", "metrics"} <= types

    def test_stream_works_without_telemetry_flag(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        assert main(
            ["fracture", "--method", "partition",
             "--clip-file", str(self._clips(tmp_path)),
             "--stream", str(stream)]
        ) == 0
        assert stream.exists()

    def test_heartbeat_requires_window(self, tmp_path):
        with pytest.raises(SystemExit, match="--window-nm"):
            main(
                ["fracture", "--clip-file", str(self._clips(tmp_path)),
                 "--clip", "sq", "--heartbeat", "0.5"]
            )

    def test_heartbeat_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fracture", "--heartbeat", "0"])


class TestTraceTail:
    def _stream(self, tmp_path):
        from repro.obs import TelemetryStream

        path = tmp_path / "run.jsonl"
        with TelemetryStream(path) as stream:
            stream.emit({"type": "event", "name": "progress",
                         "tiles_done": 1, "tiles_total": 4, "shots": 12})
            stream.emit({"type": "event", "name": "tile_outcome",
                         "tile": "t0,0", "ok": True, "shots": 12,
                         "attempts": 1})
        return path

    def test_tail_renders_each_record(self, tmp_path, capsys):
        assert main(["trace", "tail", str(self._stream(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "1/4 tiles" in out
        assert "t0,0" in out
        assert "status=ok" in out

    def test_tail_filter_narrows_output(self, tmp_path, capsys):
        path = self._stream(tmp_path)
        assert main(
            ["trace", "tail", str(path), "--filter", "tile_outcome"]
        ) == 0
        out = capsys.readouterr().out
        assert "t0,0" in out
        assert "1/4 tiles" not in out

    def test_tail_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no telemetry stream"):
            main(["trace", "tail", str(tmp_path / "absent.jsonl")])


class TestTraceDiff:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"total_shots": 100})
        head = self._write(tmp_path, "head.json", {"total_shots": 100})
        assert main(["trace", "diff", base, head]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"total_shots": 100})
        head = self._write(tmp_path, "head.json", {"total_shots": 150})
        assert main(["trace", "diff", base, head]) == 1
        out = capsys.readouterr().out
        assert "verdict: REGRESSED" in out

    def test_thresholds_are_adjustable(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": {"wall_s": 1.0}})
        head = self._write(tmp_path, "head.json", {"a": {"wall_s": 1.5}})
        assert main(["trace", "diff", base, head]) == 1
        capsys.readouterr()
        assert main(
            ["trace", "diff", base, head, "--time-rel", "0.6"]
        ) == 0

    def test_diff_accepts_stream_jsonl_inputs(self, tmp_path, capsys):
        from repro.obs import TelemetryStream

        def write_stream(name, shots):
            path = tmp_path / name
            with TelemetryStream(path) as stream:
                stream.emit({"type": "event", "name": "tile_outcome",
                             "tile": "t0,0", "ok": True, "shots": shots})
            return str(path)

        base = write_stream("base.jsonl", 100)
        head = write_stream("head.jsonl", 200)
        assert main(["trace", "diff", base, head]) == 1
        assert "tiles.shots" in capsys.readouterr().out

    def test_missing_input_is_a_friendly_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            main(["trace", "diff", str(tmp_path / "a.json"),
                  str(tmp_path / "b.json")])


class TestHierarchyCli:
    """GDSII layout input, --hierarchy/--flatten and --fracture-cache."""

    @pytest.fixture()
    def layout_gds(self, tmp_path):
        from repro.geometry.polygon import Polygon
        from repro.mask.gds import (
            GdsCell, GdsRef, Layout, TARGET_LAYER, write_layout,
        )

        unit = GdsCell("UNIT", polygons=[
            (TARGET_LAYER, Polygon([(0, 0), (60, 0), (60, 40), (0, 40)])),
        ])
        top = GdsCell("TOP", refs=[
            GdsRef.array("UNIT", origin=(0.0, 0.0), cols=3, rows=2,
                         col_pitch=150.0, row_pitch=150.0),
        ])
        path = tmp_path / "layout.gds"
        write_layout(Layout(cells={"UNIT": unit, "TOP": top}, top="TOP"), path)
        return path

    def test_hierarchy_flatten_flags_parse(self):
        args = build_parser().parse_args(["fracture", "--hierarchy"])
        assert args.hierarchy is True
        args = build_parser().parse_args(["fracture", "--flatten"])
        assert args.hierarchy is False
        args = build_parser().parse_args(["mdp", "clips.json"])
        assert args.hierarchy is True

    def test_hierarchy_and_flatten_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fracture", "--hierarchy", "--flatten"])

    def test_fracture_layout_end_to_end(self, layout_gds, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        out_dir = tmp_path / "out"
        code = main([
            "fracture", "--method", "partition",
            "--clip-file", str(layout_gds),
            "--fracture-cache", str(cache_dir),
            "--output", str(out_dir),
        ])
        output = capsys.readouterr().out
        assert "6 placed polygons (1 unique)" in output
        assert "cache_hits=5" in output
        assert (out_dir / "TOP.solution.json").exists()
        assert list(cache_dir.glob("*.json"))
        assert code in (0, 1)  # exit reflects feasibility, not errors

        # Warm re-run: everything instantiated from the disk store.
        main([
            "fracture", "--method", "partition",
            "--clip-file", str(layout_gds),
            "--fracture-cache", str(cache_dir),
        ])
        assert "hit_rate=100.0%" in capsys.readouterr().out

    def test_flatten_matches_hierarchy_shots(self, layout_gds, tmp_path, capsys):
        from repro.cli import main
        from repro.mask.io import load_solution

        hier_dir, flat_dir = tmp_path / "hier", tmp_path / "flat"
        main(["fracture", "--method", "partition",
              "--clip-file", str(layout_gds), "--output", str(hier_dir)])
        main(["fracture", "--method", "partition", "--flatten",
              "--clip-file", str(layout_gds), "--output", str(flat_dir)])
        hier_shots, _, _ = load_solution(hier_dir / "TOP.solution.json")
        flat_shots, _, _ = load_solution(flat_dir / "TOP.solution.json")
        assert hier_shots == flat_shots

    def test_layout_rejects_per_clip_outputs(self, layout_gds, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="svg"):
            main(["fracture", "--clip-file", str(layout_gds),
                  "--svg", str(tmp_path / "svg")])
        with pytest.raises(SystemExit, match="clip"):
            main(["fracture", "--clip-file", str(layout_gds),
                  "--clip", "UNIT"])

    def test_mdp_layout_rejects_baseline(self, layout_gds):
        from repro.cli import main

        with pytest.raises(SystemExit, match="baseline"):
            main(["mdp", str(layout_gds), "--baseline", "partition"])

    def test_mdp_accepts_checkpoint_without_window(self, tmp_path):
        # PR 4 remainder: the batch journal no longer requires --window-nm.
        args = build_parser().parse_args(
            ["mdp", "clips.json", "--checkpoint", str(tmp_path)]
        )
        assert args.checkpoint == str(tmp_path)

    def test_fracture_still_requires_window_for_checkpoint(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="window"):
            main(["fracture", "--checkpoint", str(tmp_path)])

    def test_mdp_batch_journal_resume(self, tmp_path, capsys):
        from repro.cli import main
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        clips = {
            "a": Polygon([(0, 0), (60, 0), (60, 40), (0, 40)]),
            "b": Polygon([(0, 0), (80, 0), (80, 30), (40, 30), (40, 70), (0, 70)]),
        }
        clip_file = tmp_path / "clips.json"
        save_clips(clips, clip_file)
        ckpt = tmp_path / "ckpt"
        main(["mdp", str(clip_file), "--method", "partition",
              "--checkpoint", str(ckpt)])
        assert (ckpt / "batch.index.jsonl").exists()
        first = capsys.readouterr().out

        main(["mdp", str(clip_file), "--method", "partition",
              "--checkpoint", str(ckpt), "--resume"])
        second = capsys.readouterr().out
        assert first.splitlines()[-1] == second.splitlines()[-1]
