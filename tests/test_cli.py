"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_requires_table(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_spec_arguments_parsed(self):
        args = build_parser().parse_args(
            ["fracture", "--sigma", "5.0", "--gamma", "1.0"]
        )
        assert args.sigma == 5.0 and args.gamma == 1.0

    def test_unknown_method_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fracture", "--method", "magic"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["fracture", "--workers", "0"],
            ["fracture", "--workers", "-2"],
            ["fracture", "--workers", "two"],
            ["fracture", "--window-nm", "0"],
            ["fracture", "--window-nm", "-5"],
            ["mdp", "clips.json", "--workers", "0"],
            ["mdp", "clips.json", "--window-nm", "-1"],
        ],
    )
    def test_invalid_window_and_workers_rejected_at_parse(self, argv, capsys):
        """Bad --workers/--window-nm fail in argparse with a friendly
        message, not a ValueError traceback from the constructor."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        err = capsys.readouterr().err
        assert "must be" in err or "expected a" in err

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit, match="--resume requires --checkpoint"):
            main(["fracture", "--clip", "ILT-1", "--window-nm", "300", "--resume"])

    def test_runtime_flags_require_window(self, capsys):
        with pytest.raises(SystemExit, match="--window-nm"):
            main(["fracture", "--clip", "ILT-1", "--checkpoint", "ckpt"])

    def test_bad_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit, match="bad fault spec"):
            main(
                [
                    "fracture", "--clip", "ILT-1", "--window-nm", "300",
                    "--inject-fault", "t0,0:explode",
                ]
            )


class TestCommands:
    def test_generate_writes_clip_files(self, tmp_path, capsys):
        assert main(["generate", "--output", str(tmp_path)]) == 0
        ilt = json.loads((tmp_path / "ilt_suite.clips.json").read_text())
        assert len(ilt["clips"]) == 10
        known = json.loads((tmp_path / "known_optimal.clips.json").read_text())
        assert len(known["clips"]) == 10

    def test_figure_rendering(self, tmp_path, capsys):
        out = tmp_path / "fig4.svg"
        assert main(["figure", "4", "--output", str(out)]) == 0
        assert out.read_text().startswith("<svg")

    def test_fracture_clip_file_roundtrip(self, tmp_path, capsys):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        code = main(
            [
                "fracture",
                "--method", "partition",
                "--clip-file", str(tmp_path / "clips.json"),
                "--output", str(tmp_path / "out"),
                "--svg", str(tmp_path / "svg"),
            ]
        )
        assert code == 0
        solution = json.loads((tmp_path / "out" / "sq.solution.json").read_text())
        assert solution["metadata"]["method"] == "PARTITION"
        assert (tmp_path / "svg" / "sq.svg").exists()
        printed = capsys.readouterr().out
        assert "PARTITION" in printed

    def test_fracture_unknown_clip_name(self, tmp_path):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        with pytest.raises(SystemExit):
            main(
                [
                    "fracture",
                    "--clip-file", str(tmp_path / "clips.json"),
                    "--clip", "nope",
                ]
            )


class TestVerifyCommand:
    def _clip_and_solution(self, tmp_path):
        from repro.geometry.polygon import Polygon
        from repro.geometry.rect import Rect
        from repro.mask.constraints import FractureSpec
        from repro.mask.io import save_clips, save_solution

        poly = Polygon([(0, 0), (60, 0), (60, 40), (0, 40)])
        clip_file = tmp_path / "clips.json"
        save_clips({"sq": poly}, clip_file)
        spec = FractureSpec()
        good = tmp_path / "good.json"
        save_solution([Rect(-1, -1, 61, 41)], spec, good, clip_name="sq")
        bad = tmp_path / "bad.json"
        save_solution([Rect(10, 10, 30, 30)], spec, bad, clip_name="sq")
        return clip_file, good, bad

    def test_verify_clean_solution(self, tmp_path, capsys):
        clip_file, good, _ = self._clip_and_solution(tmp_path)
        code = main(["verify", str(good), "--clip-file", str(clip_file)])
        assert code == 0
        assert "CD-clean" in capsys.readouterr().out

    def test_verify_bad_solution_nonzero_exit(self, tmp_path, capsys):
        clip_file, _, bad = self._clip_and_solution(tmp_path)
        code = main(["verify", str(bad), "--clip-file", str(clip_file)])
        assert code == 1
        assert "failing pixels" in capsys.readouterr().out

    def test_verify_unknown_clip(self, tmp_path):
        clip_file, good, _ = self._clip_and_solution(tmp_path)
        with pytest.raises(SystemExit):
            main(["verify", str(good), "--clip-file", str(clip_file),
                  "--clip", "nope"])


class TestGdsExport:
    def test_fracture_writes_gds(self, tmp_path, capsys):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        code = main(
            ["fracture", "--method", "partition",
             "--clip-file", str(tmp_path / "clips.json"),
             "--gds", str(tmp_path / "gds")]
        )
        assert code == 0
        from repro.mask.gds import read_gds

        cell = read_gds(tmp_path / "gds" / "sq.gds")
        assert len(cell.targets) == 1
        assert len(cell.shots) >= 1


class TestTelemetry:
    def _fracture_with_telemetry(self, tmp_path, telemetry_name):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        telemetry = tmp_path / telemetry_name
        code = main(
            ["fracture", "--method", "partition",
             "--clip-file", str(tmp_path / "clips.json"),
             "--telemetry", str(telemetry)]
        )
        assert code == 0
        return telemetry

    def test_fracture_writes_manifest_spans_convergence(self, tmp_path, capsys):
        telemetry = self._fracture_with_telemetry(tmp_path, "out.json")
        assert "wrote telemetry" in capsys.readouterr().out
        payload = json.loads(telemetry.read_text())
        assert payload["schema"] == "repro.obs/v1"
        params = payload["manifest"]["params"]
        assert params["sigma"] == 6.25 and params["lmin"] == 10.0
        names = {node["name"] for node in _walk_spans(payload["spans"])}
        assert "fracture" in names and "verify" in names
        assert payload["counters"]["fracture.shapes"] == 1

    def test_fracture_with_refinement_records_convergence(self, tmp_path, capsys):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        save_clips(
            {"sq": Polygon([(0, 0), (40, 0), (40, 30), (0, 30)])},
            tmp_path / "clips.json",
        )
        telemetry = tmp_path / "ours.json"
        code = main(
            ["fracture", "--clip-file", str(tmp_path / "clips.json"),
             "--telemetry", str(telemetry)]
        )
        assert code == 0
        payload = json.loads(telemetry.read_text())
        records = payload["convergence"]
        assert records
        assert {"iteration", "cost", "failing", "shots", "operator"} <= set(
            records[0]
        )

    def test_trace_summarize_prints_phase_breakdown(self, tmp_path, capsys):
        telemetry = self._fracture_with_telemetry(tmp_path, "out.json")
        capsys.readouterr()
        assert main(["trace", "summarize", str(telemetry)]) == 0
        out = capsys.readouterr().out
        assert "per-phase breakdown" in out
        assert "fracture" in out
        assert "counters:" in out

    def test_trace_summarize_jsonl(self, tmp_path, capsys):
        telemetry = self._fracture_with_telemetry(tmp_path, "out.jsonl")
        capsys.readouterr()
        assert main(["trace", "summarize", str(telemetry)]) == 0
        assert "per-phase breakdown" in capsys.readouterr().out

    def test_trace_summarize_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "summarize", str(tmp_path / "absent.json")])

    def test_mdp_telemetry_with_workers(self, tmp_path, capsys):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        clips = {
            "a": Polygon([(0, 0), (50, 0), (50, 30), (0, 30)]),
            "b": Polygon([(0, 0), (30, 0), (30, 60), (0, 60)]),
        }
        save_clips(clips, tmp_path / "clips.json")
        telemetry = tmp_path / "mdp.json"
        code = main(
            ["mdp", str(tmp_path / "clips.json"), "--method", "partition",
             "--workers", "2", "--telemetry", str(telemetry)]
        )
        assert code in (0, 1)
        payload = json.loads(telemetry.read_text())
        assert payload["counters"]["fracture.shapes"] == 2
        names = {node["name"] for node in _walk_spans(payload["spans"])}
        assert "mdp.batch" in names
        assert any(name.startswith("worker:") for name in names)


def _walk_spans(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk_spans(child)


class TestMdpCommand:
    def _clip_file(self, tmp_path):
        from repro.geometry.polygon import Polygon
        from repro.mask.io import save_clips

        clips = {
            "a": Polygon([(0, 0), (50, 0), (50, 30), (0, 30)]),
            "b": Polygon([(0, 0), (30, 0), (30, 60), (0, 60)]),
        }
        path = tmp_path / "clips.json"
        save_clips(clips, path)
        return path

    def test_batch_run(self, tmp_path, capsys):
        clip_file = self._clip_file(tmp_path)
        # Exit code reflects feasibility, which is marginal for exact-fit
        # partition shots; the batch mechanics are what is under test.
        code = main(
            ["mdp", str(clip_file), "--method", "partition",
             "--output", str(tmp_path / "out")]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "batch: " in out and "2 shapes" in out
        assert (tmp_path / "out" / "a.solution.json").exists()

    def test_baseline_economics(self, tmp_path, capsys):
        clip_file = self._clip_file(tmp_path)
        code = main(
            ["mdp", str(clip_file), "--method", "partition",
             "--baseline", "partition"]
        )
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "vs partition:" in out

    def test_parallel_matches_serial_output(self, tmp_path, capsys):
        clip_file = self._clip_file(tmp_path)
        serial = main(["mdp", str(clip_file), "--method", "partition"])
        serial_out = capsys.readouterr().out
        parallel = main(
            ["mdp", str(clip_file), "--method", "partition", "--workers", "2"]
        )
        parallel_out = capsys.readouterr().out
        assert serial == parallel
        assert serial_out.splitlines()[-1] == parallel_out.splitlines()[-1]
