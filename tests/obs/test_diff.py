"""Tests for the telemetry/benchmark regression diff (repro.obs.diff)."""

from __future__ import annotations

from repro.obs import (
    DiffThresholds,
    TelemetryRecorder,
    diff_payloads,
    format_diff,
    payload_metrics,
)
from repro.obs.diff import classify_metric


def _telemetry_payload(moves: int = 5, shots: int = 10) -> dict:
    rec = TelemetryRecorder()
    with rec.span("refine"):
        rec.incr("refine.moves", moves)
    rec.gauge("windowed.workers_alive", 2)
    rec.event("tile_outcome", tile="t0,0", ok=True, shots=shots, attempts=1)
    payload = rec.export()
    # Deterministic timings so diffs compare content, not scheduling.
    payload["spans"]["children"][0]["wall_s"] = 1.0
    payload["spans"]["children"][0]["cpu_s"] = 0.9
    return payload


class TestMetricExtraction:
    def test_telemetry_payload_yields_phases_counters_shots(self):
        metrics = payload_metrics(_telemetry_payload())
        assert metrics["phase.refine.wall_s"] == 1.0
        assert metrics["phase.refine.cpu_s"] == 0.9
        assert metrics["counter.refine.moves"] == 5
        assert metrics["gauge.windowed.workers_alive"] == 2
        assert metrics["tiles.count"] == 1
        assert metrics["tiles.shots"] == 10

    def test_bench_json_flattens_with_content_labels(self):
        bench = {
            "benchmark": "windowed",
            "aggregate": {"speedup": 1.4},
            "layouts": [
                {"layout": "grid-4", "shots": 100, "wall_s": 2.0},
                {"layout": "grid-9", "shots": 250, "wall_s": 5.0},
            ],
        }
        metrics = payload_metrics(bench)
        assert metrics["layouts[grid-4].shots"] == 100
        assert metrics["layouts[grid-9].wall_s"] == 5.0
        assert metrics["aggregate.speedup"] == 1.4
        # Strings and the label keys themselves never become metrics.
        assert "benchmark" not in metrics

    def test_label_keeps_reordered_lists_aligned(self):
        base = {"rows": [{"clip": "a", "shots": 1}, {"clip": "b", "shots": 2}]}
        head = {"rows": [{"clip": "b", "shots": 2}, {"clip": "a", "shots": 1}]}
        result = diff_payloads(base, head)
        assert not result.regressed
        assert result.only_base == [] and result.only_head == []


class TestClassification:
    def test_kinds(self):
        assert classify_metric("phase.refine.wall_s") == "time"
        assert classify_metric("layouts[g].wall_s") == "time"
        assert classify_metric("tiles.shots") == "count"
        assert classify_metric("counter.windowed.tile_fallbacks") == "count"
        assert classify_metric("phase.refine.cpu_s") == "info"
        assert classify_metric("aggregate.speedup") == "info"
        assert classify_metric("gauge.windowed.tile_wall_ewma_s") == "info"


class TestGating:
    def test_time_needs_rel_and_abs_to_gate(self):
        thresholds = DiffThresholds(time_rel=0.30, time_abs_floor_s=0.05)
        # +100% but only 10ms: under the absolute floor, no gate.
        small = diff_payloads(
            {"a": {"wall_s": 0.01}}, {"a": {"wall_s": 0.02}}, thresholds
        )
        assert not small.regressed
        # +10% of 10s is large absolutely but under the relative bar.
        mild = diff_payloads(
            {"a": {"wall_s": 10.0}}, {"a": {"wall_s": 11.0}}, thresholds
        )
        assert not mild.regressed
        # +50% and +5s: both bars cleared.
        bad = diff_payloads(
            {"a": {"wall_s": 10.0}}, {"a": {"wall_s": 15.0}}, thresholds
        )
        assert bad.regressed

    def test_faster_never_regresses(self):
        result = diff_payloads({"a": {"wall_s": 10.0}}, {"a": {"wall_s": 1.0}})
        assert not result.regressed

    def test_shot_count_gates_at_one_percent(self):
        base = {"total_shots": 1000}
        assert diff_payloads(base, {"total_shots": 1011}).regressed
        assert not diff_payloads(base, {"total_shots": 1005}).regressed
        # Fewer shots is an improvement.
        assert not diff_payloads(base, {"total_shots": 900}).regressed

    def test_cpu_time_reports_but_never_gates(self):
        result = diff_payloads({"a": {"cpu_s": 1.0}}, {"a": {"cpu_s": 99.0}})
        assert not result.regressed
        assert len(result.deltas) == 1

    def test_telemetry_payloads_end_to_end(self):
        base = _telemetry_payload(shots=100)
        head = _telemetry_payload(shots=150)
        result = diff_payloads(base, head)
        names = [d.name for d in result.regressions]
        assert "tiles.shots" in names


class TestFormat:
    def test_report_names_the_regression_and_verdict(self):
        result = diff_payloads({"total_shots": 100}, {"total_shots": 200})
        text = format_diff(result, "old.json", "new.json")
        assert "old.json -> new.json" in text
        assert "total_shots" in text
        assert "REGRESSED" in text
        assert "verdict: REGRESSED" in text

    def test_clean_diff_says_ok(self):
        result = diff_payloads({"total_shots": 100}, {"total_shots": 100})
        assert "verdict: OK" in format_diff(result)

    def test_one_sided_metrics_are_reported_not_fatal(self):
        result = diff_payloads({"a": 1, "b": 2}, {"a": 1, "c": 3})
        text = format_diff(result)
        assert "only in base" in text and "only in head" in text
        assert not result.regressed
