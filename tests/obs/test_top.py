"""Unit tests for the ``repro top`` dashboard helpers (renderer-first)."""

from __future__ import annotations

import json

from repro.obs import gather_job_progress, render_top, tail_records


def _write_stream(path, records):
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")


class TestTailRecords:
    def test_reads_whole_small_file(self, tmp_path):
        path = tmp_path / "s.jsonl"
        _write_stream(path, [{"type": "event", "seq": i} for i in range(5)])
        assert len(tail_records(path)) == 5

    def test_windows_large_file_and_drops_torn_head(self, tmp_path):
        path = tmp_path / "s.jsonl"
        _write_stream(
            path, [{"type": "event", "seq": i, "pad": "x" * 100}
                   for i in range(2000)]
        )
        records = tail_records(path, max_bytes=4096)
        assert records
        assert len(records) < 2000
        assert records[-1]["seq"] == 1999  # tail is the live end

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"type": "event", "seq": 0}\n{"type": "ev')
        records = tail_records(path)
        assert records == [{"type": "event", "seq": 0}]

    def test_missing_file_is_empty(self, tmp_path):
        assert tail_records(tmp_path / "absent.jsonl") == []


class TestGatherJobProgress:
    def test_folds_progress_and_phase(self):
        snapshot = gather_job_progress([
            {"type": "span_open", "name": "fracture"},
            {"type": "span_open", "name": "tile"},
            {"type": "span_close", "name": "tile"},
            {"type": "event", "name": "progress", "tiles_done": 3,
             "tiles_total": 9, "shots": 120, "eta_s": 42.0},
        ])
        assert snapshot["tiles_done"] == 3
        assert snapshot["tiles_total"] == 9
        assert snapshot["phase"] == "fracture"  # tile closed, fracture open

    def test_latest_progress_wins(self):
        snapshot = gather_job_progress([
            {"type": "event", "name": "progress", "tiles_done": 1,
             "tiles_total": 9},
            {"type": "event", "name": "progress", "tiles_done": 5,
             "tiles_total": 9},
        ])
        assert snapshot["tiles_done"] == 5

    def test_stalls_and_gaps_surface(self):
        snapshot = gather_job_progress([
            {"type": "event", "name": "worker_stalled", "pid": 3},
            {"type": "stream_gap", "missing": 2},
        ])
        assert snapshot["stalls"] == 1
        assert snapshot["gap"] is True


class TestRenderTop:
    STATS = {
        "uptime_s": 61.0,
        "queued": 1,
        "running": ["job-aaaaaaaa"],
        "workers": 2,
        "jobs_by_state": {"running": 1, "queued": 1, "done": 3},
        "caches": {
            "result": {"hits": 3, "misses": 1, "entries": 4},
            "profile": {"layouts": 2, "profiles": 10, "attaches": 5,
                        "warm_attaches": 4},
        },
        "heartbeats": {"alive": 2, "stalled": 0},
        "guard": {"counters": {"payload_rejected": 2, "rate_limited": 0}},
    }
    JOBS = [
        {"job_id": "job-aaaaaaaa", "state": "running", "priority": 1,
         "wait_s": 0.5},
        {"job_id": "job-bbbbbbbb", "state": "queued", "priority": 0,
         "wait_s": 3.0},
        {"job_id": "job-cccccccc", "state": "done", "priority": 0,
         "wait_s": 0.1},
    ]

    def test_running_count_from_stats_op_list(self):
        frame = render_top(self.STATS, self.JOBS)
        assert "running 1/2" in frame  # list coerced to a count

    def test_active_jobs_sort_first(self):
        frame = render_top(self.STATS, self.JOBS)
        lines = [l for l in frame.splitlines() if l.startswith("job-")]
        assert lines[0].startswith("job-aaaaaaaa")  # running before queued
        assert lines[1].startswith("job-bbbbbbbb")

    def test_progress_folds_into_row(self):
        frame = render_top(
            self.STATS, self.JOBS,
            {"job-aaaaaaaa": {"tiles_done": 3, "tiles_total": 9,
                              "shots": 77, "eta_s": 40, "phase": "tile",
                              "stalls": 0}},
        )
        row = next(
            l for l in frame.splitlines() if l.startswith("job-aaaaaaaa")
        )
        assert "3/9" in row and "77" in row and "40s" in row

    def test_guard_line_only_when_fired(self):
        frame = render_top(self.STATS, self.JOBS)
        assert "payload_rejected" in frame
        assert "rate_limited" not in frame  # zero counters are noise
        quiet = dict(self.STATS, guard={"counters": {}})
        assert "guard:" not in render_top(quiet, self.JOBS)

    def test_cache_summary_line(self):
        frame = render_top(self.STATS, self.JOBS)
        assert "result 75% hit" in frame
        assert "2 layouts/10 profiles" in frame

    def test_max_rows_bounds_table(self):
        jobs = [
            {"job_id": f"job-{i:08d}", "state": "done", "priority": 0}
            for i in range(50)
        ]
        frame = render_top(self.STATS, jobs, max_rows=5)
        assert sum(1 for l in frame.splitlines() if l.startswith("job-")) == 5

    def test_empty_everything_still_renders(self):
        frame = render_top({}, [])
        assert "repro top" in frame
