"""Trace correlation across streams, gaps, and crashed pool workers.

The invariant under test: one trace_id, minted once, survives every
failure mode the observability layer knows about — torn stream lines,
missing records, and worker processes that die mid-span — and every
surviving artifact still carries it.
"""

from __future__ import annotations

import json

from repro.obs import (
    TelemetryRecorder,
    TelemetryStream,
    follow_stream,
    mint_trace,
    read_stream,
    stream_to_payload,
)

TRACE = mint_trace().to_dict()


class TestStreamTraceStamping:
    def test_every_record_carries_trace_id(self, tmp_path):
        path = tmp_path / "s.jsonl"
        stream = TelemetryStream(path, trace_id=TRACE["trace_id"])
        rec = TelemetryRecorder(stream=stream, trace=TRACE)
        with rec.span("run"):
            rec.event("progress", tiles_done=1)
            rec.incr("cache.lut.hits")
            rec.emit_metrics()
        stream.close()
        records = read_stream(path)
        assert len(records) >= 5  # header, open, event, metrics, close, end
        assert all(
            r.get("trace_id") == TRACE["trace_id"] for r in records
        ), [r for r in records if r.get("trace_id") != TRACE["trace_id"]]

    def test_recorder_manifest_carries_trace(self):
        rec = TelemetryRecorder(trace=TRACE)
        assert rec.export()["manifest"]["trace"] == TRACE

    def test_late_set_trace_stamps_subsequent_records(self, tmp_path):
        path = tmp_path / "s.jsonl"
        stream = TelemetryStream(path)
        stream.emit({"type": "event", "name": "before"})
        stream.set_trace(TRACE["trace_id"])
        stream.emit({"type": "event", "name": "after"})
        stream.close()
        by_name = {
            r.get("name"): r for r in read_stream(path)
            if r.get("type") == "event"
        }
        assert "trace_id" not in by_name["before"]
        assert by_name["after"]["trace_id"] == TRACE["trace_id"]


class TestStreamGapDetection:
    def _write(self, path, seqs, header_at=()):
        with open(path, "w", encoding="utf-8") as fh:
            for seq in seqs:
                record = {
                    "type": "stream_header" if seq in header_at else "event",
                    "name": "x",
                    "seq": seq,
                    "trace_id": TRACE["trace_id"],
                }
                fh.write(json.dumps(record) + "\n")

    def test_discontinuity_yields_stream_gap(self, tmp_path):
        path = tmp_path / "s.jsonl"
        self._write(path, [0, 1, 5, 6])
        records = list(follow_stream(path))
        gaps = [r for r in records if r["type"] == "stream_gap"]
        assert len(gaps) == 1
        assert gaps[0]["expected_seq"] == 2
        assert gaps[0]["got_seq"] == 5
        assert gaps[0]["missing"] == 3
        assert gaps[0]["trace_id"] == TRACE["trace_id"]

    def test_header_resets_numbering_without_gap(self, tmp_path):
        # A resumed job's second attempt writes its own header at seq 0;
        # that restart must not read as data loss.
        path = tmp_path / "s.jsonl"
        self._write(path, [0, 1, 2, 0, 1], header_at=(0,))
        records = list(follow_stream(path))
        assert not [r for r in records if r["type"] == "stream_gap"]

    def test_contiguous_stream_has_no_gap(self, tmp_path):
        path = tmp_path / "s.jsonl"
        self._write(path, range(10))
        assert not [
            r for r in follow_stream(path) if r["type"] == "stream_gap"
        ]

    def test_gaps_counted_in_payload(self, tmp_path):
        path = tmp_path / "s.jsonl"
        self._write(path, [0, 1, 7])
        records = list(follow_stream(path))
        payload = stream_to_payload(records)
        assert payload["counters"]["stream.gaps"] == 1


class TestCrashedWorkerMerge:
    """Satellite: a pool worker dying mid-span must leave a closed,
    trace-stamped ``status=aborted`` span in the merged tree."""

    def _crashed_child_payload(self) -> dict:
        # Simulate SIGKILL: the worker recorder exports whatever it has
        # while spans are still open (runtime.py exports the child
        # payload before the pool reaps the process; a kill mid-tile
        # leaves the tile span unclosed in that export).
        child = TelemetryRecorder(trace=TRACE)
        child.span("tile", index=3).__enter__()
        child.span("refine").__enter__()
        return child.export()

    def test_orphan_spans_closed_aborted_with_trace_id(self):
        parent = TelemetryRecorder(trace=TRACE)
        with parent.span("run"):
            parent.merge_child(self._crashed_child_payload(), label="pid-7")
        wrapper = parent.root.children[0].children[0]
        assert wrapper.name == "worker:pid-7"
        assert wrapper.attrs["trace_id"] == TRACE["trace_id"]
        orphans = [
            node for node in wrapper.walk()
            if node.attrs.get("status") == "aborted"
        ]
        assert {n.name for n in orphans} == {"tile", "refine"}
        for node in orphans:
            assert node.closed
            assert node.attrs["trace_id"] == TRACE["trace_id"]

    def test_merged_tree_serializes_closed(self):
        # After the merge, nothing in the exported tree is still "open":
        # the crash left a mark (status=aborted), not a dangling span.
        parent = TelemetryRecorder(trace=TRACE)
        with parent.span("run"):
            parent.merge_child(self._crashed_child_payload(), label="w")
        spans = parent.export()["spans"]

        def walk(node):
            yield node
            for child in node.get("children", ()):
                yield from walk(child)

        assert not [n for n in walk(spans) if n.get("open")]

    def test_worker_merged_stream_record_counts_aborted(self, tmp_path):
        path = tmp_path / "s.jsonl"
        stream = TelemetryStream(path, trace_id=TRACE["trace_id"])
        parent = TelemetryRecorder(stream=stream, trace=TRACE)
        with parent.span("run"):
            parent.merge_child(self._crashed_child_payload(), label="w")
        stream.close()
        merged = next(
            r for r in read_stream(path) if r.get("type") == "worker_merged"
        )
        assert merged["aborted_spans"] == 2
        assert merged["trace_id"] == TRACE["trace_id"]

    def test_healthy_child_has_no_aborted_marks(self):
        child = TelemetryRecorder(trace=TRACE)
        with child.span("tile", index=0):
            pass
        parent = TelemetryRecorder(trace=TRACE)
        with parent.span("run"):
            parent.merge_child(child.export(), label="w")
        wrapper = parent.root.children[0].children[0]
        assert not [
            n for n in wrapper.walk() if n.attrs.get("status") == "aborted"
        ]

    def test_trace_falls_back_to_parent_when_child_has_none(self):
        # An old-style child payload without a trace still gets joined
        # via the parent's context.
        child = TelemetryRecorder()
        child.span("tile").__enter__()
        parent = TelemetryRecorder(trace=TRACE)
        with parent.span("run"):
            parent.merge_child(child.export(), label="w")
        wrapper = parent.root.children[0].children[0]
        assert wrapper.attrs["trace_id"] == TRACE["trace_id"]
