"""Tests for the run manifest and the JSON/JSONL/CSV exporters."""

from __future__ import annotations

import json

import pytest

from repro.mask.constraints import FractureSpec
from repro.obs import (
    TelemetryRecorder,
    load_telemetry,
    payload_to_records,
    run_manifest,
    write_telemetry,
)


class TestManifest:
    def test_captures_spec_params(self):
        spec = FractureSpec(sigma=5.0, gamma=1.5)
        manifest = run_manifest(spec=spec, seed=42, argv=["bench", "--table", "2"])
        params = manifest["params"]
        assert params["sigma"] == 5.0
        assert params["gamma"] == 1.5
        assert params["rho"] == 0.5
        assert params["lmin"] == 10.0
        assert params["lth"] == pytest.approx(spec.lth)
        assert manifest["seed"] == 42
        assert manifest["argv"] == ["bench", "--table", "2"]

    def test_host_and_provenance_fields(self):
        manifest = run_manifest()
        assert set(manifest["host"]) == {
            "hostname", "platform", "python", "cpu_count",
        }
        assert "created_unix" in manifest
        # In this checkout the git SHA must resolve; from a wheel it may
        # legitimately be None, so only the type is asserted.
        assert manifest["git_sha"] is None or len(manifest["git_sha"]) == 40

    def test_is_json_serializable(self):
        json.dumps(run_manifest(spec=FractureSpec(), extra={"note": "x"}))


def _sample_payload() -> dict:
    rec = TelemetryRecorder(manifest=run_manifest(spec=FractureSpec()))
    with rec.span("fracture", method="OURS"):
        with rec.span("refine"):
            rec.convergence(iteration=0, cost=2.0, failing=5, shots=3,
                            operator="edge_adjust")
            rec.convergence(iteration=1, cost=0.0, failing=0, shots=3,
                            operator="converged")
        rec.incr("refine.moves_accepted", 7)
        rec.gauge("coloring.colors_used", 3)
        rec.observe("refine.iterations", 2.0)
        rec.event("pipeline.run_outcome", run=0, feasible=True)
    return rec.export()


class TestExporters:
    def test_json_round_trip(self, tmp_path):
        payload = _sample_payload()
        path = write_telemetry(payload, tmp_path / "t.json")
        assert load_telemetry(path) == json.loads(json.dumps(payload))

    def test_jsonl_round_trip_preserves_everything(self, tmp_path):
        payload = _sample_payload()
        path = write_telemetry(payload, tmp_path / "t.jsonl")
        back = load_telemetry(path)
        assert back["manifest"]["params"] == payload["manifest"]["params"]
        assert back["counters"] == payload["counters"]
        assert back["gauges"] == payload["gauges"]
        assert back["histograms"] == payload["histograms"]
        assert back["convergence"] == payload["convergence"]
        assert back["events"] == payload["events"]
        # Span tree shape survives the flatten/rebuild cycle.
        assert back["spans"]["children"][0]["name"] == "fracture"
        assert (
            back["spans"]["children"][0]["children"][0]["name"] == "refine"
        )

    def test_jsonl_lines_are_typed_records(self, tmp_path):
        path = write_telemetry(_sample_payload(), tmp_path / "t.jsonl")
        types = {
            json.loads(line)["type"] for line in path.read_text().splitlines()
        }
        assert {"manifest", "span", "counter", "gauge", "histogram",
                "event", "convergence"} <= types

    def test_csv_is_the_convergence_table(self, tmp_path):
        path = write_telemetry(_sample_payload(), tmp_path / "t.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("seq,span,worker,iteration,cost")
        assert len(lines) == 3  # header + 2 records

    def test_csv_cannot_be_summarized(self, tmp_path):
        path = write_telemetry(_sample_payload(), tmp_path / "t.csv")
        with pytest.raises(ValueError):
            load_telemetry(path)

    def test_records_include_span_links(self):
        records = list(payload_to_records(_sample_payload()))
        spans = [r for r in records if r["type"] == "span"]
        roots = [r for r in spans if r["parent"] is None]
        assert len(roots) == 1
        ids = {r["id"] for r in spans}
        assert all(r["parent"] in ids for r in spans if r["parent"] is not None)

    def test_creates_parent_directories(self, tmp_path):
        path = write_telemetry(
            _sample_payload(), tmp_path / "deep" / "dir" / "t.json"
        )
        assert path.exists()


class TestAtomicWrites:
    def test_no_tmp_file_survives_any_format(self, tmp_path):
        for name in ("t.json", "t.jsonl", "t.csv"):
            write_telemetry(_sample_payload(), tmp_path / name)
        assert not list(tmp_path.glob("*.tmp"))

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        # Overwriting an existing export goes through tmp+rename, so the
        # destination always holds a complete document.
        path = tmp_path / "t.json"
        write_telemetry(_sample_payload(), path)
        first = path.read_text()
        write_telemetry(_sample_payload(), path)
        assert json.loads(path.read_text())  # complete JSON either way
        assert path.read_text().count('"schema"') == first.count('"schema"')


class TestRecordsRoundTrip:
    def test_payload_records_payload_identity(self):
        from repro.obs import records_to_payload

        payload = _sample_payload()
        back = records_to_payload(list(payload_to_records(payload)))
        assert back["manifest"]["params"] == payload["manifest"]["params"]
        assert back["counters"] == payload["counters"]
        assert back["gauges"] == payload["gauges"]
        assert back["histograms"] == payload["histograms"]
        assert back["events"] == payload["events"]
        assert back["convergence"] == payload["convergence"]
        assert back["spans"] == payload["spans"]

    def test_merged_multi_worker_payload_round_trips(self):
        from repro.obs import records_to_payload

        parent = TelemetryRecorder(manifest={"run_id": "merge"})
        for label in ("t0,0", "t1,0"):
            child = TelemetryRecorder()
            with child.span("tile", tile=label):
                child.incr("refine.moves", 2)
                child.event("tile_note", tile=label)
                child.convergence(iteration=0, cost=1.0)
            parent.merge_child(child.export(), label=label)
        payload = parent.export()
        back = records_to_payload(list(payload_to_records(payload)))
        assert back["spans"] == payload["spans"]
        workers = [c["name"] for c in back["spans"]["children"]]
        assert workers == ["worker:t0,0", "worker:t1,0"]
        assert back["counters"]["refine.moves"] == 4
        assert [e["worker"] for e in back["events"]] == ["t0,0", "t1,0"]
        assert len(back["convergence"]) == 2

    def test_torn_jsonl_line_is_skipped_on_load(self, tmp_path):
        path = write_telemetry(_sample_payload(), tmp_path / "t.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "event", "name": "to')  # torn tail
        back = load_telemetry(path)
        assert all(e.get("name") != "to" for e in back["events"])

    def test_orphaned_span_reattaches_under_root(self):
        from repro.obs import records_to_payload

        records = [
            {"type": "span", "id": 0, "parent": None, "name": "run",
             "wall_s": 0.0, "cpu_s": 0.0},
            # Parent record 7 was lost to a torn write.
            {"type": "span", "id": 8, "parent": 7, "name": "orphan",
             "wall_s": 1.0, "cpu_s": 0.5},
        ]
        payload = records_to_payload(records)
        assert payload["spans"]["children"][0]["name"] == "orphan"

    def test_malformed_records_are_skipped(self):
        from repro.obs import records_to_payload

        payload = records_to_payload([
            "not-a-dict",
            {"type": "span", "name": "no-id"},
            {"type": "counter", "value": 3},  # no name
            {"type": "counter", "name": "ok"},  # no value -> defaults to 0
            {"type": "histogram"},  # no name
        ])
        assert payload["counters"] == {"ok": 0}
        assert payload["histograms"] == {}
