"""Tests for the run manifest and the JSON/JSONL/CSV exporters."""

from __future__ import annotations

import json

import pytest

from repro.mask.constraints import FractureSpec
from repro.obs import (
    TelemetryRecorder,
    load_telemetry,
    payload_to_records,
    run_manifest,
    write_telemetry,
)


class TestManifest:
    def test_captures_spec_params(self):
        spec = FractureSpec(sigma=5.0, gamma=1.5)
        manifest = run_manifest(spec=spec, seed=42, argv=["bench", "--table", "2"])
        params = manifest["params"]
        assert params["sigma"] == 5.0
        assert params["gamma"] == 1.5
        assert params["rho"] == 0.5
        assert params["lmin"] == 10.0
        assert params["lth"] == pytest.approx(spec.lth)
        assert manifest["seed"] == 42
        assert manifest["argv"] == ["bench", "--table", "2"]

    def test_host_and_provenance_fields(self):
        manifest = run_manifest()
        assert set(manifest["host"]) == {
            "hostname", "platform", "python", "cpu_count",
        }
        assert "created_unix" in manifest
        # In this checkout the git SHA must resolve; from a wheel it may
        # legitimately be None, so only the type is asserted.
        assert manifest["git_sha"] is None or len(manifest["git_sha"]) == 40

    def test_is_json_serializable(self):
        json.dumps(run_manifest(spec=FractureSpec(), extra={"note": "x"}))


def _sample_payload() -> dict:
    rec = TelemetryRecorder(manifest=run_manifest(spec=FractureSpec()))
    with rec.span("fracture", method="OURS"):
        with rec.span("refine"):
            rec.convergence(iteration=0, cost=2.0, failing=5, shots=3,
                            operator="edge_adjust")
            rec.convergence(iteration=1, cost=0.0, failing=0, shots=3,
                            operator="converged")
        rec.incr("refine.moves_accepted", 7)
        rec.gauge("coloring.colors_used", 3)
        rec.observe("refine.iterations", 2.0)
        rec.event("pipeline.run_outcome", run=0, feasible=True)
    return rec.export()


class TestExporters:
    def test_json_round_trip(self, tmp_path):
        payload = _sample_payload()
        path = write_telemetry(payload, tmp_path / "t.json")
        assert load_telemetry(path) == json.loads(json.dumps(payload))

    def test_jsonl_round_trip_preserves_everything(self, tmp_path):
        payload = _sample_payload()
        path = write_telemetry(payload, tmp_path / "t.jsonl")
        back = load_telemetry(path)
        assert back["manifest"]["params"] == payload["manifest"]["params"]
        assert back["counters"] == payload["counters"]
        assert back["gauges"] == payload["gauges"]
        assert back["histograms"] == payload["histograms"]
        assert back["convergence"] == payload["convergence"]
        assert back["events"] == payload["events"]
        # Span tree shape survives the flatten/rebuild cycle.
        assert back["spans"]["children"][0]["name"] == "fracture"
        assert (
            back["spans"]["children"][0]["children"][0]["name"] == "refine"
        )

    def test_jsonl_lines_are_typed_records(self, tmp_path):
        path = write_telemetry(_sample_payload(), tmp_path / "t.jsonl")
        types = {
            json.loads(line)["type"] for line in path.read_text().splitlines()
        }
        assert {"manifest", "span", "counter", "gauge", "histogram",
                "event", "convergence"} <= types

    def test_csv_is_the_convergence_table(self, tmp_path):
        path = write_telemetry(_sample_payload(), tmp_path / "t.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("seq,span,worker,iteration,cost")
        assert len(lines) == 3  # header + 2 records

    def test_csv_cannot_be_summarized(self, tmp_path):
        path = write_telemetry(_sample_payload(), tmp_path / "t.csv")
        with pytest.raises(ValueError):
            load_telemetry(path)

    def test_records_include_span_links(self):
        records = list(payload_to_records(_sample_payload()))
        spans = [r for r in records if r["type"] == "span"]
        roots = [r for r in spans if r["parent"] is None]
        assert len(roots) == 1
        ids = {r["id"] for r in spans}
        assert all(r["parent"] in ids for r in spans if r["parent"] is not None)

    def test_creates_parent_directories(self, tmp_path):
        path = write_telemetry(
            _sample_payload(), tmp_path / "deep" / "dir" / "t.json"
        )
        assert path.exists()
