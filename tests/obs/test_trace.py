"""Unit tests for the trace-context primitive."""

from __future__ import annotations

from repro.obs import TraceContext, mint_trace, valid_trace_id


class TestMint:
    def test_fresh_root(self):
        trace = mint_trace()
        assert valid_trace_id(trace.trace_id)
        assert valid_trace_id(trace.span_id)
        assert trace.parent_span_id is None
        assert len(trace.trace_id) == 32
        assert len(trace.span_id) == 16

    def test_ids_are_random(self):
        a, b = mint_trace(), mint_trace()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_frozen(self):
        trace = mint_trace()
        try:
            trace.trace_id = "x"  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("TraceContext must be immutable")


class TestChild:
    def test_same_trace_new_span(self):
        parent = mint_trace()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.parent_span_id == parent.span_id

    def test_grandchild_chains(self):
        root = mint_trace()
        hop2 = root.child().child()
        assert hop2.trace_id == root.trace_id
        assert hop2.parent_span_id != root.span_id


class TestSerialization:
    def test_round_trip(self):
        trace = mint_trace().child()
        back = TraceContext.from_dict(trace.to_dict())
        assert back == trace

    def test_root_omits_parent_key(self):
        assert "parent_span_id" not in mint_trace().to_dict()

    def test_unknown_keys_ignored(self):
        trace = mint_trace()
        payload = {**trace.to_dict(), "evil": "x" * 10000, "op": "shutdown"}
        back = TraceContext.from_dict(payload)
        assert back is not None
        assert back.trace_id == trace.trace_id

    def test_garbage_degrades_to_none(self):
        # Malformed contexts from untrusted clients must degrade to
        # "no context" (server mints a fresh one), never raise.
        for payload in (
            None,
            "not-a-mapping",
            42,
            [],
            {},
            {"trace_id": None},
            {"trace_id": 123},
            {"trace_id": "UPPERCASE-NOT-HEX"},
            {"trace_id": "abc"},  # too short
            {"trace_id": "a" * 100},  # too long
        ):
            assert TraceContext.from_dict(payload) is None

    def test_bad_span_ids_replaced_not_rejected(self):
        trace = mint_trace()
        back = TraceContext.from_dict({
            "trace_id": trace.trace_id,
            "span_id": "<script>",
            "parent_span_id": ["not", "a", "string"],
        })
        assert back is not None
        assert back.trace_id == trace.trace_id
        assert valid_trace_id(back.span_id)
        assert back.parent_span_id is None


class TestValidTraceId:
    def test_accepts_hex(self):
        assert valid_trace_id("deadbeef" * 4)

    def test_rejects_non_strings_and_non_hex(self):
        assert not valid_trace_id(None)
        assert not valid_trace_id(12345678)
        assert not valid_trace_id("ghijklmn")
        assert not valid_trace_id("DEADBEEFDEADBEEF")  # uppercase
