"""Unit tests for the span/metric recorder core."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NullRecorder,
    TelemetryRecorder,
    get_recorder,
    recording,
    set_recorder,
)


class TestNullRecorder:
    def test_is_process_default(self):
        assert isinstance(get_recorder(), NullRecorder)
        assert get_recorder().enabled is False

    def test_all_operations_are_noops(self):
        rec = NullRecorder()
        with rec.span("anything", attr=1) as span:
            span.annotate(more=2)
            rec.incr("c")
            rec.gauge("g", 1.0)
            rec.observe("h", 2.0)
            rec.event("e", field=3)
            rec.convergence(iteration=0, cost=1.0)
            rec.merge_child({}, label="w")

    def test_span_reentrant(self):
        rec = NullRecorder()
        span = rec.span("x")
        with span:
            with span:
                pass


class TestSpans:
    def test_nesting_builds_tree(self):
        rec = TelemetryRecorder()
        with rec.span("outer", clip="A"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        outer = rec.root.children[0]
        assert outer.name == "outer"
        assert outer.attrs == {"clip": "A"}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.wall_s >= sum(c.wall_s for c in outer.children)
        assert outer.cpu_s >= 0.0

    def test_annotate_after_open(self):
        rec = TelemetryRecorder()
        with rec.span("s") as span:
            span.annotate(shots=5)
        assert rec.root.children[0].attrs["shots"] == 5

    def test_sibling_spans_do_not_nest(self):
        rec = TelemetryRecorder()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        assert [c.name for c in rec.root.children] == ["a", "b"]

    def test_current_path(self):
        rec = TelemetryRecorder()
        assert rec.current_path() == ""
        with rec.span("a"):
            with rec.span("b"):
                assert rec.current_path() == "a/b"

    def test_exception_still_closes_span(self):
        rec = TelemetryRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("broken"):
                raise RuntimeError("boom")
        assert rec.current_path() == ""
        assert rec.root.children[0].wall_s >= 0.0

    def test_threads_get_independent_stacks(self):
        rec = TelemetryRecorder()
        errors: list[str] = []

        def worker(tag: str) -> None:
            for _ in range(50):
                with rec.span(f"t-{tag}"):
                    if not rec.current_path().startswith(f"t-{tag}"):
                        errors.append(rec.current_path())

        threads = [
            threading.Thread(target=worker, args=(str(i),)) for i in range(4)
        ]
        with rec.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        # Worker spans attach to the root (their stacks were empty) and
        # are tagged with the thread name.
        names = {c.name for c in rec.root.children}
        assert "main" in names
        tagged = [
            c for c in rec.root.children if c.name.startswith("t-")
        ]
        assert len(tagged) == 200
        assert all("thread" in c.attrs for c in tagged)


class TestMetrics:
    def test_counters_accumulate(self):
        rec = TelemetryRecorder()
        rec.incr("a")
        rec.incr("a", 4)
        assert rec.counters == {"a": 5}

    def test_gauge_last_wins(self):
        rec = TelemetryRecorder()
        rec.gauge("g", 1.0)
        rec.gauge("g", 7.0)
        assert rec.gauges["g"] == 7.0

    def test_histogram_stats(self):
        rec = TelemetryRecorder()
        for value in (1.0, 3.0, 2.0):
            rec.observe("h", value)
        hist = rec.histograms["h"]
        assert hist["count"] == 3
        assert hist["sum"] == 6.0
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0

    def test_convergence_records_sequenced_and_span_tagged(self):
        rec = TelemetryRecorder()
        with rec.span("refine"):
            rec.convergence(iteration=0, cost=2.0)
            rec.convergence(iteration=1, cost=1.0)
        records = rec.convergence_records
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["span"] == "refine" for r in records)


class TestInstallation:
    def test_set_and_restore(self):
        rec = TelemetryRecorder()
        previous = get_recorder()
        try:
            assert set_recorder(rec) is rec
            assert get_recorder() is rec
            assert isinstance(set_recorder(None), NullRecorder)
        finally:
            set_recorder(previous)

    def test_recording_context_restores_on_exit(self):
        rec = TelemetryRecorder()
        before = get_recorder()
        with recording(rec) as active:
            assert active is rec
            assert get_recorder() is rec
        assert get_recorder() is before

    def test_recording_restores_on_error(self):
        before = get_recorder()
        with pytest.raises(ValueError):
            with recording(TelemetryRecorder()):
                raise ValueError
        assert get_recorder() is before


class TestMergeChild:
    def _child_payload(self) -> dict:
        child = TelemetryRecorder()
        with child.span("fracture", method="OURS"):
            with child.span("refine"):
                child.convergence(iteration=0, cost=1.0)
        child.incr("refine.moves_accepted", 3)
        child.gauge("coloring.colors_used", 4)
        child.observe("refine.iterations", 10.0)
        child.event("pipeline.run_outcome", run=0)
        return child.export()

    def test_spans_grafted_under_worker_node(self):
        parent = TelemetryRecorder()
        with parent.span("mdp.batch"):
            parent.merge_child(self._child_payload(), label="clipA")
        batch = parent.root.children[0]
        worker = batch.children[0]
        assert worker.name == "worker:clipA"
        assert worker.children[0].name == "fracture"
        assert worker.wall_s == worker.children[0].wall_s

    def test_counters_sum_and_histograms_merge(self):
        parent = TelemetryRecorder()
        parent.incr("refine.moves_accepted", 2)
        parent.observe("refine.iterations", 4.0)
        parent.merge_child(self._child_payload(), label="w")
        assert parent.counters["refine.moves_accepted"] == 5
        hist = parent.histograms["refine.iterations"]
        assert hist["count"] == 2
        assert hist["min"] == 4.0 and hist["max"] == 10.0

    def test_convergence_and_events_tagged_with_worker(self):
        parent = TelemetryRecorder()
        parent.merge_child(self._child_payload(), label="w1")
        parent.merge_child(self._child_payload(), label="w2")
        workers = [r["worker"] for r in parent.convergence_records]
        assert workers == ["w1", "w2"]
        assert [r["seq"] for r in parent.convergence_records] == [0, 1]
        assert parent.events[0]["worker"] == "w1"
