"""Tests for the streaming telemetry event bus (repro.obs.stream)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    STREAM_SCHEMA,
    StreamFormatter,
    TelemetryRecorder,
    TelemetryStream,
    follow_stream,
    read_stream,
    recording,
    stream_to_payload,
)


class TestTelemetryStream:
    def test_header_and_end_bracket_the_stream(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TelemetryStream(path) as stream:
            stream.emit({"type": "event", "name": "x"})
        records = read_stream(path)
        assert records[0]["type"] == "stream_header"
        assert records[0]["schema"] == STREAM_SCHEMA
        assert records[-1]["type"] == "stream_end"
        assert records[-1]["status"] == "ok"

    def test_seq_is_monotonic_and_every_line_is_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TelemetryStream(path) as stream:
            for i in range(10):
                stream.emit({"type": "event", "name": f"e{i}"})
        lines = path.read_text().splitlines()
        seqs = [json.loads(line)["seq"] for line in lines]
        assert seqs == list(range(len(lines)))

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = TelemetryStream(path)

        def blast(tag: str) -> None:
            for i in range(200):
                stream.emit({"type": "event", "name": f"{tag}{i}", "pad": "x" * 64})

        threads = [
            threading.Thread(target=blast, args=(t,)) for t in ("a", "b", "c")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stream.close()
        records = read_stream(path)
        # header + 600 events + end, all decodable, seq strictly increasing
        assert len(records) == 602
        assert [r["seq"] for r in records] == list(range(602))

    def test_error_exit_records_error_status(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with TelemetryStream(path):
                raise RuntimeError("boom")
        assert read_stream(path)[-1]["status"] == "error"

    def test_emit_after_close_is_a_noop(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = TelemetryStream(path)
        stream.close()
        stream.emit({"type": "event", "name": "late"})
        assert all(r.get("name") != "late" for r in read_stream(path))

    def test_unserializable_record_degrades_not_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TelemetryStream(path) as stream:
            stream.emit({"type": "event", "name": "bad", "x": {1, 2}})
        # default=str covers most objects; a set serializes via str().
        records = read_stream(path)
        assert all(isinstance(r, dict) for r in records)


class TestTornTolerance:
    def test_reader_drops_trailing_partial_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = TelemetryStream(path)
        stream.emit({"type": "event", "name": "good"})
        stream.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "event", "name": "torn')  # no newline
        names = [r.get("name") for r in read_stream(path)]
        assert "good" in names
        assert "torn" not in names

    def test_reader_skips_corrupt_interior_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"type": "stream_header", "seq": 0}\n'
            "%% not json %%\n"
            '{"type": "event", "name": "after", "seq": 2}\n'
        )
        names = [r.get("name") for r in read_stream(path)]
        assert "after" in names


class TestFollow:
    def test_follow_yields_appended_records_until_end(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = TelemetryStream(path)

        def writer() -> None:
            for i in range(5):
                stream.emit({"type": "event", "name": f"e{i}"})
            stream.close()

        thread = threading.Thread(target=writer)
        thread.start()
        records = list(
            follow_stream(path, follow=True, poll_s=0.01, timeout_s=10.0)
        )
        thread.join()
        assert records[-1]["type"] == "stream_end"
        assert [r["name"] for r in records if r["type"] == "event"] == [
            f"e{i}" for i in range(5)
        ]

    def test_follow_timeout_returns_instead_of_hanging(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = TelemetryStream(path)  # never closed
        stream.emit({"type": "event", "name": "only"})
        records = list(
            follow_stream(path, follow=True, poll_s=0.01, timeout_s=0.1)
        )
        assert any(r.get("name") == "only" for r in records)

    def test_missing_file_raises_without_follow(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(follow_stream(tmp_path / "absent.jsonl"))


class TestRecorderIntegration:
    def test_spans_events_convergence_reach_the_stream(self, tmp_path):
        path = tmp_path / "run.jsonl"
        stream = TelemetryStream(path)
        rec = TelemetryRecorder(stream=stream)
        with recording(rec):
            with rec.span("refine", clip="c1"):
                rec.event("tile_outcome", tile="t0,0", ok=True, shots=3,
                          attempts=1, fallback=False, replayed=False)
                rec.convergence(iteration=0, cost=1.0, failing=2, shots=3,
                                operator="split")
            rec.incr("refine.moves", 4)
            rec.emit_metrics()
        stream.close()
        by_type: dict[str, list] = {}
        for record in read_stream(path):
            by_type.setdefault(record["type"], []).append(record)
        assert by_type["span_open"][0]["name"] == "refine"
        assert by_type["span_open"][0]["attrs"] == {"clip": "c1"}
        assert by_type["span_close"][0]["wall_s"] >= 0.0
        assert by_type["event"][0]["name"] == "tile_outcome"
        assert by_type["convergence"][0]["iteration"] == 0
        assert by_type["metrics"][-1]["counters"]["refine.moves"] == 4

    def test_merge_child_emits_worker_merged(self, tmp_path):
        child = TelemetryRecorder()
        with child.span("tile", tile="t0,0"):
            child.incr("refine.moves", 2)
        path = tmp_path / "run.jsonl"
        stream = TelemetryStream(path)
        parent = TelemetryRecorder(stream=stream)
        parent.merge_child(child.export(), label="t0,0")
        stream.close()
        merged = [
            r for r in read_stream(path) if r["type"] == "worker_merged"
        ]
        assert merged and merged[0]["label"] == "t0,0"

    def test_recorder_without_stream_collects_identically(self, tmp_path):
        def run(stream):
            rec = TelemetryRecorder(stream=stream)
            with recording(rec):
                with rec.span("phase"):
                    rec.incr("c", 2)
                    rec.event("e", x=1)
                    rec.convergence(iteration=0, cost=1.0)
            payload = rec.export()
            # Timings differ run to run; compare the structural content.
            payload["spans"] = [c["name"] for c in payload["spans"]["children"]]
            payload["manifest"] = {}
            return payload

        with TelemetryStream(tmp_path / "s.jsonl") as stream:
            streamed = run(stream)
        plain = run(None)
        assert streamed == plain


class TestStreamToPayload:
    def test_folds_metrics_events_and_spans(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TelemetryStream(path) as stream:
            stream.emit({"type": "manifest", "run_id": "r1"})
            stream.emit({"type": "span_close", "name": "refine",
                         "wall_s": 1.5, "cpu_s": 1.0})
            stream.emit({"type": "metrics", "counters": {"a": 1},
                         "gauges": {"g": 2.0}})
            stream.emit({"type": "metrics", "counters": {"a": 5},
                         "gauges": {"g": 7.0}})
            stream.emit({"type": "event", "name": "tile_outcome",
                         "tile": "t0,0", "shots": 9})
            stream.emit({"type": "convergence", "iteration": 0, "cost": 1.0})
        payload = stream_to_payload(read_stream(path))
        assert payload["schema"] == "repro.obs/v1"
        assert payload["manifest"]["run_id"] == "r1"
        assert payload["counters"] == {"a": 5}  # last snapshot wins
        assert payload["gauges"] == {"g": 7.0}
        assert payload["spans"]["children"][0]["name"] == "refine"
        assert payload["events"][0]["name"] == "tile_outcome"
        assert payload["convergence"][0]["iteration"] == 0


class TestStreamFormatter:
    def test_progress_heartbeat_stall_and_tile_lines(self):
        fmt = StreamFormatter()
        lines = [
            fmt.format({"type": "stream_header", "schema": STREAM_SCHEMA,
                        "pid": 1, "t": 100.0}),
            fmt.format({"type": "event", "name": "progress", "t": 101.0,
                        "tiles_done": 3, "tiles_total": 9, "shots": 120,
                        "tile_wall_ewma_s": 0.52, "eta_s": 12.4}),
            fmt.format({"type": "event", "name": "worker_heartbeat",
                        "t": 101.5, "pid": 42, "tile": "t1,0", "attempt": 1,
                        "rss_bytes": 50_000_000, "cpu_s": 2.5}),
            fmt.format({"type": "event", "name": "worker_stalled", "t": 102.0,
                        "pid": 42, "kind": "no_heartbeat", "tile": "t1,0",
                        "age_s": 3.2}),
            fmt.format({"type": "event", "name": "tile_outcome", "t": 103.0,
                        "tile": "t1,0", "ok": True, "shots": 40,
                        "attempts": 2, "fallback": True}),
        ]
        assert lines[0].startswith("     0.000s")
        assert "3/9 tiles" in lines[1] and "eta=12s" in lines[1]
        assert "pid=42" in lines[2] and "50MB" in lines[2]
        assert "STALL" in lines[3] and "no_heartbeat" in lines[3]
        assert "t1,0" in lines[4] and "[fallback]" in lines[4]

    def test_unknown_record_type_still_renders(self):
        line = StreamFormatter().format({"type": "mystery", "t": 1.0, "x": 2})
        assert "mystery" in line and "x=2" in line
