"""Unit tests for the chrome-trace / speedscope exporters and CI gate."""

from __future__ import annotations

import pytest

from repro.obs import (
    TelemetryRecorder,
    TelemetryStream,
    chrome_from_payload,
    chrome_from_records,
    mint_trace,
    read_stream,
    speedscope_from_payload,
    validate_chrome_trace,
)

TRACE = {"trace_id": "cd" * 16, "span_id": "12" * 8}


def _payload() -> dict:
    rec = TelemetryRecorder(trace=TRACE)
    with rec.span("run"):
        with rec.span("fracture", clip="ILT-1"):
            with rec.span("tile", index=0):
                pass
            with rec.span("tile", index=1):
                pass
        rec.event("progress", tiles_done=2, tiles_total=2)
    return rec.export()


class TestChromeFromPayload:
    def test_valid_and_joined(self):
        doc = chrome_from_payload(_payload())
        summary = validate_chrome_trace(
            doc, expect_trace_id=TRACE["trace_id"]
        )
        assert summary["spans"] >= 4  # root + run + fracture + 2 tiles
        assert summary["instants"] == 1
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names.count("tile") == 2

    def test_span_attrs_become_args(self):
        doc = chrome_from_payload(_payload())
        fract = next(
            e for e in doc["traceEvents"] if e.get("name") == "fracture"
        )
        assert fract["args"]["clip"] == "ILT-1"
        assert fract["args"]["trace_id"] == TRACE["trace_id"]

    def test_worker_wrappers_get_own_lane(self):
        parent = TelemetryRecorder(trace=TRACE)
        child = TelemetryRecorder(trace=TRACE)
        with child.span("tile", index=7):
            pass
        with parent.span("run"):
            parent.merge_child(child.export(), label="pid-9")
        doc = chrome_from_payload(parent.export())
        summary = validate_chrome_trace(doc)
        assert summary["lanes"] == 2
        worker = next(
            e for e in doc["traceEvents"] if e.get("name") == "worker:pid-9"
        )
        tile = next(e for e in doc["traceEvents"] if e.get("name") == "tile")
        assert tile["tid"] == worker["tid"] != 1

    def test_open_spans_marked_aborted(self):
        rec = TelemetryRecorder(trace=TRACE)
        span = rec.span("never_closed").__enter__()  # noqa: F841 crash sim
        doc = chrome_from_payload(rec.export())
        event = next(
            e for e in doc["traceEvents"] if e.get("name") == "never_closed"
        )
        assert event["args"]["status"] == "aborted"


class TestChromeFromRecords:
    def _stream(self, tmp_path, crash_mid_span: bool = False):
        path = tmp_path / "s.jsonl"
        stream = TelemetryStream(path, trace_id=TRACE["trace_id"])
        rec = TelemetryRecorder(stream=stream, trace=TRACE)
        with rec.span("run"):
            with rec.span("tile", index=0):
                pass
            if crash_mid_span:
                rec.span("tile", index=1).__enter__()
                stream.detach()  # simulated kill: no span_close, no end
                return path
        stream.close()
        return path

    def test_real_timestamps_and_join(self, tmp_path):
        records = read_stream(self._stream(tmp_path))
        doc = chrome_from_records(records)
        summary = validate_chrome_trace(
            doc, expect_trace_id=TRACE["trace_id"]
        )
        assert summary["spans"] >= 2

    def test_crash_spans_closed_aborted(self, tmp_path):
        records = read_stream(self._stream(tmp_path, crash_mid_span=True))
        doc = chrome_from_records(records)
        validate_chrome_trace(doc, expect_trace_id=TRACE["trace_id"])
        aborted = [
            e for e in doc["traceEvents"]
            if e.get("args", {}).get("status") == "aborted"
        ]
        assert aborted  # torn spans are visible, not dropped

    def test_restart_joins_both_attempts(self, tmp_path):
        # First attempt dies mid-span; a restarted attempt appends its
        # own header to the same file.  One export shows both, with the
        # first attempt's span aborted at the restart boundary.
        path = self._stream(tmp_path, crash_mid_span=True)
        stream = TelemetryStream(
            path, append=True, trace_id=TRACE["trace_id"]
        )
        rec = TelemetryRecorder(stream=stream, trace=TRACE)
        with rec.span("run"):
            with rec.span("tile", index=1):
                pass
        stream.close()
        doc = chrome_from_records(read_stream(path))
        summary = validate_chrome_trace(
            doc, expect_trace_id=TRACE["trace_id"]
        )
        aborted = [
            e for e in doc["traceEvents"]
            if e.get("args", {}).get("status") == "aborted"
        ]
        assert aborted
        tiles = [
            e for e in doc["traceEvents"]
            if e.get("name") == "tile" and e["ph"] == "X"
        ]
        # Attempt one: tile 0 closed + tile 1 aborted; attempt two
        # re-runs tile 1 — all three are visible in one export.
        assert len(tiles) == 3
        assert (
            sum(1 for t in tiles if t["args"].get("status") == "aborted")
            == 1
        )
        assert summary["trace_id"] == TRACE["trace_id"]

    def test_heartbeats_get_worker_lanes(self, tmp_path):
        path = tmp_path / "s.jsonl"
        stream = TelemetryStream(path, trace_id=TRACE["trace_id"])
        stream.emit({"type": "event", "name": "worker_heartbeat",
                     "pid": 4242, "rss_bytes": 1024})
        stream.close()
        doc = chrome_from_records(read_stream(path))
        beat = next(
            e for e in doc["traceEvents"]
            if e.get("name") == "worker_heartbeat"
        )
        assert beat["tid"] == 4242


class TestSpeedscope:
    def test_structurally_valid(self):
        doc = speedscope_from_payload(_payload())
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        assert TRACE["trace_id"] in profile["name"]
        depth = 0
        for event in profile["events"]:
            depth += 1 if event["type"] == "O" else -1
            assert depth >= 0
            assert 0 <= event["frame"] < len(doc["shared"]["frames"])
        assert depth == 0  # every open closed

    def test_events_monotone(self):
        events = speedscope_from_payload(_payload())["profiles"][0]["events"]
        times = [e["at"] for e in events]
        assert times == sorted(times)


class TestValidator:
    def test_rejects_missing_trace_id(self):
        doc = chrome_from_payload(_payload())
        for event in doc["traceEvents"]:
            event.get("args", {}).pop("trace_id", None)
        with pytest.raises(ValueError, match="trace_id"):
            validate_chrome_trace(doc)

    def test_rejects_mixed_trace_ids(self):
        doc = chrome_from_payload(_payload())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        spans[-1]["args"]["trace_id"] = "ff" * 16
        with pytest.raises(ValueError, match="one trace_id"):
            validate_chrome_trace(doc)

    def test_rejects_escaping_span(self):
        doc = chrome_from_payload(_payload())
        spans = sorted(
            (e for e in doc["traceEvents"] if e["ph"] == "X"),
            key=lambda e: e["dur"],
        )
        spans[0]["dur"] = spans[-1]["dur"] * 10  # child now outlives parent
        with pytest.raises(ValueError, match="escapes"):
            validate_chrome_trace(doc)

    def test_rejects_wrong_expected_id(self):
        doc = chrome_from_payload(_payload())
        with pytest.raises(ValueError, match="expected"):
            validate_chrome_trace(doc, expect_trace_id="00" * 16)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
