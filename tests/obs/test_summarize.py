"""Tests for the trace-summary rendering."""

from __future__ import annotations

from repro.obs import (
    TelemetryRecorder,
    format_clip_breakdown,
    format_summary,
    phase_breakdown,
)


def _bench_like_payload() -> dict:
    rec = TelemetryRecorder(manifest={"git_sha": "abc", "argv": ["bench"]})
    with rec.span("bench.clip", clip="ILT-1"):
        with rec.span("fracture", method="OURS"):
            with rec.span("portfolio_run", run=0):
                with rec.span("init.rdp"):
                    pass
                with rec.span("refine"):
                    rec.convergence(iteration=0, cost=3.0, failing=4,
                                    shots=2, operator="edge_adjust")
                    rec.convergence(iteration=1, cost=0.0, failing=0,
                                    shots=2, operator="converged")
                with rec.span("polish"):
                    pass
            with rec.span("verify"):
                pass
        with rec.span("fracture", method="GSC"):
            with rec.span("verify"):
                pass
    rec.incr("refine.moves_accepted", 5)
    rec.gauge("coloring.colors_used", 2)
    rec.observe("refine.iterations", 2.0)
    return rec.export()


class TestPhaseBreakdown:
    def test_aggregates_by_name(self):
        phases = phase_breakdown(_bench_like_payload())
        by_name = {p["phase"]: p for p in phases}
        assert by_name["fracture"]["count"] == 2
        assert by_name["verify"]["count"] == 2
        assert by_name["refine"]["count"] == 1

    def test_sorted_by_wall_time(self):
        phases = phase_breakdown(_bench_like_payload())
        walls = [p["wall_s"] for p in phases]
        assert walls == sorted(walls, reverse=True)

    def test_self_time_excludes_children(self):
        phases = phase_breakdown(_bench_like_payload())
        clip = next(p for p in phases if p["phase"] == "bench.clip")
        assert clip["self_s"] <= clip["wall_s"]


class TestFormatSummary:
    def test_contains_all_sections(self):
        text = format_summary(_bench_like_payload())
        assert "manifest:" in text
        assert "per-phase breakdown" in text
        assert "refine" in text
        assert "counters:" in text
        assert "refine.moves_accepted: 5" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "convergence (2 records" in text
        assert "converged" in text

    def test_handles_empty_payload(self):
        text = format_summary({"manifest": {}, "spans": {"name": "run"}})
        assert "per-phase breakdown" in text


class TestClipBreakdown:
    def test_per_clip_per_method_rows(self):
        text = format_clip_breakdown(_bench_like_payload())
        lines = text.splitlines()
        assert "clip" in lines[0] and "refine s" in lines[0]
        body = "\n".join(lines[2:])
        assert "ILT-1" in body
        assert "OURS" in body
        assert "GSC" in body

    def test_no_clips_message(self):
        rec = TelemetryRecorder()
        with rec.span("fracture", method="OURS"):
            pass
        assert "no bench.clip spans" in format_clip_breakdown(rec.export())


class TestPartialPayloads:
    """``trace summarize`` must degrade, not raise, on partial payloads."""

    def test_totally_empty_payload(self):
        text = format_summary({})
        assert "(empty)" in text
        assert "(no spans recorded)" in text

    def test_none_sections(self):
        text = format_summary({
            "manifest": None, "spans": None, "counters": None,
            "gauges": None, "histograms": None, "convergence": None,
        })
        assert "per-phase breakdown" in text

    def test_merged_child_only_trace(self):
        # A parent that only ever merged worker payloads: the root has
        # worker:* children but no spans of its own.
        child = TelemetryRecorder()
        with child.span("tile", tile="t0,0"):
            child.convergence(iteration=0, cost=1.0)
        parent = TelemetryRecorder()
        parent.merge_child(child.export(), label="t0,0")
        text = format_summary(parent.export())
        assert "worker:t0,0" in text
        assert "convergence (1 records" in text

    def test_missing_convergence_fields_render_defaults(self):
        payload = {
            "spans": {"name": "run"},
            "convergence": [{"span": "refine"}, "not-a-dict", None],
        }
        text = format_summary(payload)
        assert "convergence (1 records" in text

    def test_histogram_with_missing_fields(self):
        payload = {
            "spans": {"name": "run"},
            "histograms": {"h": {}, "h2": None},
        }
        text = format_summary(payload)
        assert "h: n=0" in text

    def test_clip_breakdown_on_spanless_payload(self):
        assert "no bench.clip spans" in format_clip_breakdown({})
