"""Unit tests for the optional sampling profiler."""

from __future__ import annotations

import time

from repro.obs import SamplingProfiler, TelemetryRecorder


def _spin(seconds: float) -> None:
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        sum(i * i for i in range(500))


class TestSamplingProfiler:
    def test_samples_land_in_manifest_by_span(self):
        rec = TelemetryRecorder(trace={"trace_id": "ab" * 16})
        with SamplingProfiler(rec, interval_s=0.002):
            with rec.span("hot"):
                _spin(0.15)
        profile = rec.manifest["profile"]
        assert profile["samples"] > 0
        assert profile["interval_s"] == 0.002
        span_keys = list(profile["by_span"])
        assert any("hot" in key for key in span_keys)
        # Collapsed stacks are semicolon-joined module.function paths.
        stacks = next(iter(profile["by_span"].values()))
        assert all(";" in s or "." in s for s in stacks)

    def test_idle_recorder_uses_no_span_bucket(self):
        rec = TelemetryRecorder()
        profiler = SamplingProfiler(rec, interval_s=0.002).start()
        _spin(0.05)
        table = profiler.stop()
        if table["by_span"]:  # timing-dependent, but bucket name is not
            assert set(table["by_span"]) == {"(no span)"}

    def test_stop_is_idempotent_and_publishes_once(self):
        rec = TelemetryRecorder()
        profiler = SamplingProfiler(rec, interval_s=0.002).start()
        _spin(0.03)
        first = profiler.stop()
        second = profiler.stop()
        assert second["samples"] == first["samples"]

    def test_profiler_never_touches_metrics(self):
        # Purely observational: no counters/gauges/events appear.
        rec = TelemetryRecorder()
        with SamplingProfiler(rec, interval_s=0.002):
            _spin(0.03)
        payload = rec.export()
        assert payload["counters"] == {}
        assert payload["events"] == []
