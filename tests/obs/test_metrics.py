"""Unit tests for Prometheus text exposition (render + strict parse)."""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    MetricSample,
    TelemetryRecorder,
    parse_prometheus,
    payload_samples,
    render_prometheus,
)
from repro.obs.metrics import sanitize_metric_name


class TestSanitize:
    def test_dotted_keys_map_mechanically(self):
        assert sanitize_metric_name("cache.lut.hits") == "repro_cache_lut_hits"

    def test_existing_prefix_not_doubled(self):
        assert sanitize_metric_name("repro_run_info") == "repro_run_info"

    def test_hostile_name_still_legal(self):
        name = sanitize_metric_name('x{evil="1"} 9\n# HELP')
        assert "\n" not in name and "{" not in name and " " not in name


class TestRender:
    def test_one_type_header_per_name(self):
        text = render_prometheus([
            MetricSample("service.latency_count", 3, type="counter",
                         labels={"priority": "0"}),
            MetricSample("service.latency_count", 5, type="counter",
                         labels={"priority": "1"}),
        ])
        assert text.count("# TYPE repro_service_latency_count counter") == 1
        assert 'priority="0"' in text and 'priority="1"' in text

    def test_label_values_escaped(self):
        text = render_prometheus([
            MetricSample("x", 1, labels={"name": 'a"b\\c\nd'}),
        ])
        parsed = parse_prometheus(text)
        assert len(parsed) == 1

    def test_special_values(self):
        text = render_prometheus([
            MetricSample("a", math.inf),
            MetricSample("b", -math.inf),
            MetricSample("c", 2.5),
            MetricSample("d", 3.0),
        ])
        parsed = parse_prometheus(text)
        assert parsed[("repro_a", ())] == math.inf
        assert parsed[("repro_b", ())] == -math.inf
        assert parsed[("repro_c", ())] == 2.5
        assert parsed[("repro_d", ())] == 3
        assert "repro_d 3\n" in text  # integral values render as ints

    def test_empty(self):
        assert render_prometheus([]) == ""


class TestParse:
    def test_round_trip_values(self):
        text = render_prometheus([
            MetricSample("queue.depth", 7),
            MetricSample("jobs", 2, labels={"state": "done"}),
        ])
        parsed = parse_prometheus(text)
        assert parsed[("repro_queue_depth", ())] == 7
        assert parsed[("repro_jobs", (("state", "done"),))] == 2

    def test_rejects_garbage_lines(self):
        with pytest.raises(ValueError, match="not a metric sample"):
            parse_prometheus("repro_ok 1\nthis is not exposition format\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus("repro_x yes\n")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus('repro_x{state=done} 1\n')

    def test_comments_and_blanks_skipped(self):
        parsed = parse_prometheus("# HELP x y\n\n# TYPE x gauge\nx 1\n")
        assert parsed == {("x", ()): 1.0}


class TestPayloadSamples:
    def _payload(self) -> dict:
        rec = TelemetryRecorder(trace={"trace_id": "ab" * 16})
        with rec.span("fracture"):
            rec.incr("cache.lut.hits", 3)
            rec.gauge("windowed.workers_alive", 2)
            rec.observe("tile_wall_s", 0.25)
            rec.observe("tile_wall_s", 0.75)
        return rec.export()

    def test_counters_get_total_suffix(self):
        text = render_prometheus(payload_samples(self._payload()))
        parsed = parse_prometheus(text)
        assert parsed[("repro_cache_lut_hits_total", ())] == 3
        assert parsed[("repro_windowed_workers_alive", ())] == 2

    def test_histograms_render_as_summary(self):
        parsed = parse_prometheus(
            render_prometheus(payload_samples(self._payload()))
        )
        assert parsed[("repro_tile_wall_s_count", ())] == 2
        assert parsed[("repro_tile_wall_s_sum", ())] == 1.0
        assert parsed[("repro_tile_wall_s_min", ())] == 0.25
        assert parsed[("repro_tile_wall_s_max", ())] == 0.75

    def test_trace_id_rides_as_run_info(self):
        parsed = parse_prometheus(
            render_prometheus(payload_samples(self._payload()))
        )
        key = ("repro_run_info", (("trace_id", "ab" * 16),))
        assert parsed[key] == 1

    def test_hostile_metric_names_cannot_corrupt_exposition(self):
        payload = {
            "counters": {'evil{inject="1"} 9\n# TYPE': 1},
            "gauges": {"also\nbad": 2.0},
        }
        # Whatever the names were, the output must still parse.
        parse_prometheus(render_prometheus(payload_samples(payload)))
