"""Tests for resource sampling and the worker heartbeat channel."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs import (
    HeartbeatMonitor,
    HeartbeatWriter,
    TelemetryRecorder,
    read_heartbeats,
    rss_bytes,
    sample_resources,
)


class TestSampling:
    def test_rss_bytes_is_plausible(self):
        rss = rss_bytes()
        # A Python interpreter needs at least a few MB; None only on
        # platforms with neither /proc nor getrusage.
        assert rss is None or rss > 1_000_000

    def test_sample_has_the_contracted_fields(self):
        sample = sample_resources()
        assert set(sample) == {"t", "rss_bytes", "cpu_s"}
        assert sample["cpu_s"] >= 0.0


class TestHeartbeatWriter:
    def test_beat_publishes_atomic_json(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, interval_s=60.0)
        writer.directory.mkdir(exist_ok=True)
        writer.beat()
        record = json.loads(writer.path.read_text())
        assert record["pid"] == os.getpid()
        assert record["beats"] == 1
        assert "rss_bytes" in record and "cpu_s" in record
        assert not list(tmp_path.glob("*.tmp"))  # rename completed

    def test_set_and_clear_task_bracket_the_tile(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, interval_s=60.0)
        writer.directory.mkdir(exist_ok=True)
        writer.set_task("t3,1", attempt=2)
        record = json.loads(writer.path.read_text())
        assert record["tile"] == "t3,1"
        assert record["attempt"] == 2
        assert record["task_started_t"] <= time.time()
        writer.clear_task()
        assert "tile" not in json.loads(writer.path.read_text())

    def test_thread_republishes(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, interval_s=0.02).start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if json.loads(writer.path.read_text())["beats"] >= 3:
                    break
                time.sleep(0.01)
            assert json.loads(writer.path.read_text())["beats"] >= 3
        finally:
            writer.stop()

    def test_torn_down_directory_is_tolerated(self, tmp_path):
        directory = tmp_path / "gone"
        writer = HeartbeatWriter(directory, interval_s=60.0)
        writer.beat()  # directory never created: swallowed, no raise


class TestReadHeartbeats:
    def test_reads_all_and_skips_corrupt(self, tmp_path):
        (tmp_path / "hb-100.json").write_text(json.dumps({"pid": 100, "t": 1.0}))
        (tmp_path / "hb-200.json").write_text("{torn")
        (tmp_path / "hb-300.json").write_text(json.dumps({"pid": 300, "t": 2.0}))
        beats = read_heartbeats(tmp_path)
        assert [b["pid"] for b in beats] == [100, 300]

    def test_missing_directory_is_empty(self, tmp_path):
        assert read_heartbeats(tmp_path / "absent") == []


def _beat_file(directory, pid, t, tile=None, started=None, cpu=1.0):
    record = {"pid": pid, "beats": 1, "t": t, "rss_bytes": 10_000_000,
              "cpu_s": cpu}
    if tile is not None:
        record.update(tile=tile, attempt=1, task_started_t=started or t)
    (directory / f"hb-{pid}.json").write_text(json.dumps(record))


class TestHeartbeatMonitor:
    def test_fresh_workers_fold_into_gauges_and_events(self, tmp_path):
        now = 1000.0
        _beat_file(tmp_path, 11, now - 0.1, tile="t0,0", cpu=1.5)
        _beat_file(tmp_path, 12, now - 0.2, cpu=2.5)
        rec = TelemetryRecorder()
        monitor = HeartbeatMonitor(tmp_path, rec, interval_s=1.0)
        stalls = monitor.tick(now=now)
        assert stalls == []
        assert rec.gauges["windowed.workers_alive"] == 2
        assert rec.gauges["windowed.workers_stalled"] == 0
        assert rec.gauges["windowed.worker_cpu_s_total"] == 4.0
        assert rec.gauges["windowed.worker_rss_peak_bytes"] == 10_000_000
        beats = [e for e in rec.events if e["name"] == "worker_heartbeat"]
        assert {e["pid"] for e in beats} == {11, 12}

    def test_stale_file_flags_no_heartbeat_once_per_episode(self, tmp_path):
        now = 1000.0
        _beat_file(tmp_path, 11, now - 10.0, tile="t0,0")
        rec = TelemetryRecorder()
        monitor = HeartbeatMonitor(
            tmp_path, rec, interval_s=1.0, stall_after_s=3.0
        )
        first = monitor.tick(now=now)
        second = monitor.tick(now=now + 1.0)
        assert len(first) == 1
        assert first[0]["kind"] == "no_heartbeat"
        assert first[0]["tile"] == "t0,0"
        assert second == []  # deduped: same episode
        assert rec.counters["windowed.worker_stalls"] == 1
        assert rec.gauges["windowed.workers_stalled"] == 1

    def test_recovered_worker_can_stall_again(self, tmp_path):
        rec = TelemetryRecorder()
        monitor = HeartbeatMonitor(
            tmp_path, rec, interval_s=1.0, stall_after_s=3.0
        )
        _beat_file(tmp_path, 11, 990.0)
        assert len(monitor.tick(now=1000.0)) == 1  # stalled
        _beat_file(tmp_path, 11, 1001.0)
        assert monitor.tick(now=1001.5) == []  # recovered
        _beat_file(tmp_path, 11, 1001.0)
        assert len(monitor.tick(now=1010.0)) == 1  # new episode

    def test_slow_task_catches_hung_worker_with_live_heartbeat(self, tmp_path):
        # The heartbeat file is fresh (the daemon thread still beats) but
        # the task started long ago: precisely the hang signature.
        now = 1000.0
        _beat_file(tmp_path, 11, now - 0.1, tile="t2,0", started=now - 50.0)
        rec = TelemetryRecorder()
        monitor = HeartbeatMonitor(
            tmp_path, rec, interval_s=1.0,
            stall_after_s=3.0, slow_task_after_s=10.0,
        )
        stalls = monitor.tick(now=now)
        assert len(stalls) == 1
        assert stalls[0]["kind"] == "slow_task"
        assert stalls[0]["tile"] == "t2,0"
        assert stalls[0]["age_s"] >= 49.0
        # Still counted alive — the process responds, it is just slow.
        assert rec.gauges["windowed.workers_alive"] == 1

    def test_idle_fresh_worker_is_never_slow(self, tmp_path):
        now = 1000.0
        _beat_file(tmp_path, 11, now - 0.1)  # no task
        monitor = HeartbeatMonitor(
            tmp_path, TelemetryRecorder(), interval_s=1.0,
            slow_task_after_s=0.001,
        )
        assert monitor.tick(now=now) == []

    def test_tick_emits_metrics_snapshot_into_stream(self, tmp_path):
        from repro.obs import TelemetryStream, read_stream

        now = 1000.0
        _beat_file(tmp_path, 11, now - 0.1)
        stream_path = tmp_path / "s.jsonl"
        stream = TelemetryStream(stream_path)
        rec = TelemetryRecorder(stream=stream)
        HeartbeatMonitor(tmp_path, rec, interval_s=1.0).tick(now=now)
        stream.close()
        types = [r["type"] for r in read_stream(stream_path)]
        assert "metrics" in types
        assert "event" in types  # the worker_heartbeat event


class TestNamedWriterAndSummary:
    def test_named_writer_with_meta_and_unlink(self, tmp_path):
        writer = HeartbeatWriter(
            tmp_path, interval_s=60.0, name="job-ab12cd34",
            meta={"job_id": "job-ab12cd34"},
        )
        writer.directory.mkdir(exist_ok=True)
        writer.beat()
        assert writer.path.name == "hb-job-ab12cd34.json"
        record = json.loads(writer.path.read_text())
        assert record["job_id"] == "job-ab12cd34"
        writer.stop(unlink=True)
        assert not writer.path.exists()

    def test_summarize_classifies_alive_slow_and_dead(self, tmp_path):
        from repro.obs import summarize_heartbeats

        now = 1000.0
        (tmp_path / "hb-a.json").write_text(
            json.dumps({"pid": 1, "t": now - 1.0, "job_id": "job-a"})
        )
        (tmp_path / "hb-b.json").write_text(json.dumps({
            "pid": 2, "t": now - 1.0, "tile": "CLIP-9",
            "task_started_t": now - 500.0, "job_id": "job-b",
        }))
        (tmp_path / "hb-c.json").write_text(
            json.dumps({"pid": 3, "t": now - 60.0})
        )
        summary = summarize_heartbeats(
            tmp_path, stall_after_s=10.0, slow_task_after_s=120.0, now=now,
        )
        assert summary["alive"] == 1 and summary["stalled"] == 2
        by_pid = {w["pid"]: w for w in summary["workers"]}
        assert by_pid[1]["status"] == "alive"
        assert by_pid[2]["status"] == "slow_task"
        assert by_pid[2]["task"] == "CLIP-9"
        assert by_pid[2]["task_age_s"] == pytest.approx(500.0)
        assert by_pid[2]["job_id"] == "job-b"
        assert by_pid[3]["status"] == "no_heartbeat"

    def test_summarize_without_slow_threshold(self, tmp_path):
        from repro.obs import summarize_heartbeats

        now = 1000.0
        (tmp_path / "hb-b.json").write_text(json.dumps({
            "pid": 2, "t": now - 1.0, "tile": "CLIP-9",
            "task_started_t": now - 500.0,
        }))
        summary = summarize_heartbeats(tmp_path, stall_after_s=10.0, now=now)
        assert summary["alive"] == 1 and summary["stalled"] == 0

    def test_summarize_empty_or_missing_directory(self, tmp_path):
        from repro.obs import summarize_heartbeats

        summary = summarize_heartbeats(tmp_path / "missing")
        assert summary == {"workers": [], "alive": 0, "stalled": 0}
