"""End-to-end telemetry over the real fracturing pipeline.

Covers the acceptance criteria of the observability subsystem: a
recorded run produces a span tree, per-iteration convergence records and
the documented counters; recording does not change results; and the
disabled-path (null recorder) overhead on a small clip stays below 5 %
of end-to-end runtime.
"""

from __future__ import annotations

import time

from repro.fracture.pipeline import ModelBasedFracturer, RefineConfig
from repro.obs import NullRecorder, TelemetryRecorder, recording


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def annotate(self, **attrs):
        pass


class _CountingRecorder(NullRecorder):
    """Counts instrumentation calls while behaving exactly like the
    null recorder (``enabled`` stays False), so the counted run takes
    the same code path as a production telemetry-off run."""

    def __init__(self):
        self.spans = 0
        self.metric_calls = 0
        self._span = _NullSpan()

    def span(self, name, **attrs):
        self.spans += 1
        return self._span

    def incr(self, name, value=1):
        self.metric_calls += 1

    def gauge(self, name, value):
        self.metric_calls += 1

    def observe(self, name, value):
        self.metric_calls += 1

    def event(self, name, **fields):
        self.metric_calls += 1

    def convergence(self, **fields):
        self.metric_calls += 1


def _fracture(shape, spec):
    fracturer = ModelBasedFracturer(config=RefineConfig.fast())
    return fracturer.fracture(shape, spec)


class TestRecordedRun:
    def test_span_tree_convergence_and_counters(self, l_shape, spec):
        rec = TelemetryRecorder()
        with recording(rec):
            result = _fracture(l_shape, spec)
        payload = rec.export()

        names = {node["name"] for node in _walk(payload["spans"])}
        assert {"fracture", "portfolio_run", "refine", "verify"} <= names
        assert {"init.rdp", "init.graph", "init.coloring"} <= names

        records = payload["convergence"]
        assert records, "refinement must emit per-iteration records"
        assert {"iteration", "cost", "failing", "shots", "operator"} <= set(
            records[0]
        )
        iters = [r["iteration"] for r in records if r["span"].endswith("refine")]
        assert iters[0] == 0
        if result.feasible:
            assert any(r["operator"] == "converged" for r in records)

        counters = payload["counters"]
        assert counters.get("fracture.shapes") == 1
        assert "refine.moves_accepted" in counters
        assert "refine.moves_blocked_2sigma" in counters
        assert "cache.lut.hits" in counters
        assert "coloring.colors_used" in payload["gauges"]

    def test_recording_does_not_change_results(self, l_shape, spec):
        baseline = _fracture(l_shape, spec)
        with recording(TelemetryRecorder()):
            recorded = _fracture(l_shape, spec)
        assert [s.as_tuple() for s in recorded.shots] == [
            s.as_tuple() for s in baseline.shots
        ]
        assert recorded.feasible == baseline.feasible


class TestDisabledOverhead:
    def test_null_recorder_overhead_under_5_percent(self, rect_shape, spec):
        """Instrumentation cost with telemetry off must stay < 5 %.

        Directly A/B-timing an instrumented vs. hypothetical
        un-instrumented build is impossible, so the bound is computed
        from first principles: count every obs call the pipeline makes
        on this clip, measure the per-call cost of the null recorder,
        and compare the product against the measured end-to-end runtime.
        """
        _fracture(rect_shape, spec)  # warm caches (LUT, imports)

        counter = _CountingRecorder()
        with recording(counter):
            _fracture(rect_shape, spec)
        total_calls = counter.spans + counter.metric_calls
        assert total_calls > 0, "pipeline should be instrumented"

        start = time.perf_counter()
        _fracture(rect_shape, spec)  # null recorder is the default
        runtime = time.perf_counter() - start

        null = NullRecorder()
        reps = 200_000
        start = time.perf_counter()
        for _ in range(reps):
            with null.span("x", a=1):
                pass
            null.incr("c", 1)
        per_pair = (time.perf_counter() - start) / reps
        # One span + one incr per rep — a conservative per-call stand-in.
        overhead = total_calls * per_pair
        assert overhead < 0.05 * runtime, (
            f"{total_calls} null obs calls cost {overhead * 1e3:.2f} ms "
            f"against a {runtime * 1e3:.0f} ms run (>5 %)"
        )


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)
