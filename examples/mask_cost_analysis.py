#!/usr/bin/env python3
"""Mask economics: from per-clip shot counts to full-mask cost savings.

Walks the paper's §1 argument end to end: run a conventional and a
model-based MDP flow over the ILT suite, extrapolate the per-shape shot
counts to a full-field mask (billions of shapes), convert write time to
mask cost with the 20 %-of-cost write model, and report the projected
savings per mask set.

    python examples/mask_cost_analysis.py
"""

from repro import FractureSpec, ModelBasedFracturer, RefineConfig
from repro.baselines import PartitionFracturer
from repro.bench.shapes import ilt_suite
from repro.ebeam.writer import VsbWriterModel
from repro.mask.cost import MaskCostModel
from repro.mask.mdp import MdpPipeline

FULL_MASK_SHAPES = 2e8  # critical-layer shape count for the projection


def main() -> None:
    spec = FractureSpec()
    shapes = ilt_suite()[:5]

    conventional = MdpPipeline(PartitionFracturer(), spec)
    model_based = MdpPipeline(
        ModelBasedFracturer(config=RefineConfig.fast()), spec
    )

    print("running conventional flow (geometric partitioning)...")
    base = conventional.run(shapes, verbose=True)
    print("\nrunning model-based flow (coloring + refinement)...")
    improved = model_based.run(shapes, verbose=True)

    writer = VsbWriterModel()
    cost = MaskCostModel(writer=writer)
    base_hours = writer.full_mask_estimate(base.shots_per_shape(), FULL_MASK_SHAPES)
    new_hours = writer.full_mask_estimate(
        improved.shots_per_shape(), FULL_MASK_SHAPES
    )
    saving = model_based.projected_saving(base, improved)

    print("\n--- full-mask projection ---")
    print(f"avg shots/shape: {base.shots_per_shape():.1f} -> "
          f"{improved.shots_per_shape():.1f}")
    print(f"write time: {base_hours:.1f}h -> {new_hours:.1f}h")
    print(f"shot reduction: {saving['shot_reduction']:.1%}")
    print(f"mask cost saving: {saving['mask_cost_saving_fraction']:.1%}")
    print(f"per mask set (${cost.mask_set_cost_usd:,.0f}): "
          f"${saving['mask_set_saving_usd']:,.0f}")
    print("\n(the paper's rule of thumb: 10% fewer shots ~ 2% mask cost; "
          f"check: {cost.cost_saving_fraction(0.10):.1%})")

    # Second-order quality of the model-based solution on one clip:
    # dose latitude (drift tolerance) and write-order travel.
    from repro.ebeam.latitude import dose_window
    from repro.ebeam.schedule import greedy_schedule, natural_schedule

    shape = shapes[0]
    shots = improved.results[0].shots
    window = dose_window(shots, shape, spec)
    print(f"\n{shape.name} quality: dose window "
          f"[{window.s_min:.3f}, {window.s_max:.3f}] "
          f"(latitude {window.latitude:.1%} of nominal)")
    naive = natural_schedule(shots)
    ordered = greedy_schedule(shots)
    print(f"write order: {naive.travel_nm:.0f} nm deflection travel as-is, "
          f"{ordered.travel_nm:.0f} nm after nearest-neighbour ordering")


if __name__ == "__main__":
    main()
