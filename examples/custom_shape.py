#!/usr/bin/env python3
"""Fracture a user-defined mask shape through the public API.

Shows the pieces a downstream integration needs: build a target from a
vertex list (or a pixel mask), pick model parameters, fracture, inspect
the exposure and the violations, and render the result.

    python examples/custom_shape.py
"""

from pathlib import Path

from repro import (
    FractureSpec,
    MaskShape,
    ModelBasedFracturer,
    Polygon,
    check_solution,
)
from repro.ebeam.intensity_map import IntensityMap
from repro.viz.render import render_fracture

# A T-shaped contact pad with a 45° chamfer — mixing rectilinear and
# diagonal boundary segments exercises both corner-point rules.
TARGET = Polygon(
    [
        (0, 50), (45, 50), (45, 0), (95, 0), (95, 50), (125, 50),
        (140, 65),  # chamfer written via corner rounding
        (140, 95), (0, 95),
    ]
)


def main() -> None:
    spec = FractureSpec()
    shape = MaskShape.from_polygon(
        TARGET, pitch=spec.pitch, margin=spec.grid_margin, name="custom-T"
    )
    print(f"target: {shape}")

    result = ModelBasedFracturer().fracture(shape, spec)
    print(f"{result.shot_count} shots in {result.runtime_s:.2f}s, "
          f"feasible={result.feasible}")
    for index, shot in enumerate(result.shots):
        print(f"  shot {index}: ({shot.xbl:.0f},{shot.ybl:.0f})"
              f"-({shot.xtr:.0f},{shot.ytr:.0f})  "
              f"{shot.width:.0f}x{shot.height:.0f} nm")

    # Independent verification and exposure statistics.
    report = check_solution(result.shots, shape, spec)
    imap = IntensityMap(shape.grid, spec.sigma)
    for shot in result.shots:
        imap.add(shot)
    pixels = shape.pixels(spec.gamma)
    on_dose = imap.total[pixels.on]
    print(f"verification: {report.total_failing} failing pixels")
    print(f"on-target dose: min={on_dose.min():.3f} mean={on_dose.mean():.3f} "
          f"(threshold rho={spec.rho})")

    svg = Path(__file__).parent / "custom_shape.svg"
    svg.write_text(render_fracture(shape, result.shots))
    print(f"wrote {svg.name}")


if __name__ == "__main__":
    main()
