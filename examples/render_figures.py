#!/usr/bin/env python3
"""Regenerate the paper's Figures 1-5 as SVG files.

Each figure is drawn from the live algorithm internals (RDP output,
corner points, cliques, placement, merge rules), so these double as
visual debugging aids.

    python examples/render_figures.py            # all five
    python examples/render_figures.py --fig 2    # just one
"""

import argparse
from pathlib import Path

from repro.bench.figures import FIGURES, render_figure


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fig", type=int, choices=sorted(FIGURES))
    parser.add_argument("--output", default=str(Path(__file__).parent / "figures"))
    args = parser.parse_args()

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    numbers = [args.fig] if args.fig else sorted(FIGURES)
    for number in numbers:
        path = out / f"figure{number}.svg"
        path.write_text(render_figure(number))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
