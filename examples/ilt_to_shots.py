#!/usr/bin/env python3
"""The full flow: intended wafer pattern → ILT mask → e-beam shots.

Chains every stage this library implements, the way a mask shop's data
path runs:

1. draw the intended wafer pattern (two thin bars);
2. run inverse lithography (gradient descent under the aerial model) to
   get the curvilinear mask that actually prints it;
3. fracture that mask into overlapping VSB shots with the proposed
   model-based method;
4. verify against the e-beam proximity model and write GDSII + SVG.

    python examples/ilt_to_shots.py
"""

from pathlib import Path

import numpy as np

from repro import FractureSpec, ModelBasedFracturer
from repro.geometry.raster import PixelGrid
from repro.litho import AerialImageModel, InverseLithoOptimizer
from repro.mask.gds import write_solution_gds
from repro.mask.shape import MaskShape
from repro.viz.render import render_fracture


def main() -> None:
    # 1. Intended wafer pattern: two 42nm bars.
    size = 280
    target = np.zeros((size, size), dtype=bool)
    target[90:132, 50:230] = True
    target[168:210, 50:230] = True
    print(f"intended pattern: {int(target.sum())} nm^2 over {size}x{size} window")

    # 2. Inverse lithography.
    optimizer = InverseLithoOptimizer()
    ilt = optimizer.optimize(target)
    print(f"ILT: loss {ilt.loss_history[0]:.0f} -> {ilt.loss_history[-1]:.0f} "
          f"in {len(ilt.loss_history)} iterations, "
          f"edge error {ilt.edge_error:.2%}")

    # Sanity: the optimized mask must print better than the drawn pattern.
    model = AerialImageModel()
    drawn_error = model.edge_placement_error(target.astype(float), target)
    print(f"printed-pattern error: drawn mask {drawn_error:.2%} vs "
          f"ILT mask {ilt.edge_error:.2%}")

    # 3. Fracture the ILT contour.
    spec = FractureSpec()
    grid = PixelGrid(0.0, 0.0, spec.pitch, size, size)
    shape = MaskShape.from_mask(ilt.mask, grid, name="ilt-demo")
    print(f"mask contour: {shape.vertex_count} vertices")
    result = ModelBasedFracturer().fracture(shape, spec)
    print(f"fracture: {result.shot_count} shots, feasible={result.feasible}, "
          f"{result.runtime_s:.1f}s")

    # 4. Persist.
    out = Path(__file__).parent
    write_solution_gds(shape.polygon, result.shots, out / "ilt_to_shots.gds",
                       cell_name="ILTDEMO")
    (out / "ilt_to_shots.svg").write_text(render_fracture(shape, result.shots))
    print("wrote ilt_to_shots.gds and ilt_to_shots.svg")


if __name__ == "__main__":
    main()
