#!/usr/bin/env python3
"""Extension demo: variable-dose shots on top of fixed-dose fracturing.

The paper sticks to fixed-dose rectangular shots (§2, citing Elayat et
al. [21]) but cites dose modulation [18] as the alternative lever.  This
example shows the trade: deliberately under-fracture a clip (fewer,
coarser shots than the CD tolerance really allows), then let per-shot
dose optimization repair the residual violations without adding a single
shot.

    python examples/dose_modulation.py
"""

from repro import FractureSpec, check_solution
from repro.bench.shapes import ilt_suite
from repro.ebeam.dose import count_failing, optimize_doses
from repro.fracture.graph_color import approximate_fracture
from repro.fracture.refine import RefineParams, refine


def main() -> None:
    spec = FractureSpec()
    shape = ilt_suite()[1]
    print(f"target: {shape}")

    # Under-refined fixed-dose solution: stage 1 plus a *short* stage 2.
    initial, _ = approximate_fracture(shape, spec)
    shots, trace = refine(shape, spec, initial, RefineParams(nmax=60))
    fixed_report = check_solution(shots, shape, spec)
    print(f"fixed dose: {len(shots)} shots, "
          f"{fixed_report.total_failing} failing pixels "
          f"(refinement stopped early on purpose)")

    # Dose-only repair at frozen geometry.
    result = optimize_doses(shots, shape, spec)
    print(f"dose optimization: {result.iterations} iterations, "
          f"{result.failing_before} -> {result.failing_after} failing pixels")
    doses = sorted(s.dose for s in result.shots)
    print(f"dose range used: {doses[0]:.2f} .. {doses[-1]:.2f} "
          f"(nominal 1.0)")
    final = count_failing(result.shots, shape, spec)
    print(f"verified failing pixels with modulated doses: {final}")
    if result.improved:
        print("-> dose modulation repaired violations that fixed-dose "
              "geometry alone had not (at zero extra shots)")
    else:
        print("-> this clip needed no dose help; try a harder one")


if __name__ == "__main__":
    main()
