#!/usr/bin/env python3
"""Compare all fracturing heuristics on a few ILT clips.

Reproduces the structure of the paper's Table 2 on a three-clip subset:
conventional partitioning explodes on curvy shapes, greedy covering and
matching pursuit land in between, and coloring + refinement wins.

    python examples/compare_methods.py [--clips 3]
"""

import argparse

from repro import FractureSpec, ModelBasedFracturer
from repro.baselines import (
    GreedySetCoverFracturer,
    MatchingPursuitFracturer,
    PartitionFracturer,
    ProtoEdaFracturer,
)
from repro.bench.shapes import ilt_suite


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--clips", type=int, default=3)
    args = parser.parse_args()

    spec = FractureSpec()
    shapes = ilt_suite()[: args.clips]
    methods = [
        PartitionFracturer(),
        GreedySetCoverFracturer(),
        MatchingPursuitFracturer(),
        ProtoEdaFracturer(),
        ModelBasedFracturer(),
    ]

    header = f"{'clip':<8s}" + "".join(f"{m.name:>14s}" for m in methods)
    print(header)
    print("-" * len(header))
    totals = {m.name: 0 for m in methods}
    for shape in shapes:
        cells = [f"{shape.name:<8s}"]
        for method in methods:
            result = method.fracture(shape, spec)
            totals[method.name] += result.shot_count
            mark = "" if result.feasible else "*"
            cells.append(f"{result.shot_count}{mark} ({result.runtime_s:.1f}s)".rjust(14))
        print("".join(cells))
    print("-" * len(header))
    print(f"{'total':<8s}" + "".join(f"{totals[m.name]:>14d}" for m in methods))
    print("(* = solution left CD violations)")

    ours = totals["OURS"]
    for name, count in totals.items():
        if name != "OURS" and ours:
            print(f"OURS vs {name}: {count / ours:.2f}x shots")

    # Beyond shot count: how the best method uses the writer.
    from repro.bench.metrics import solution_metrics

    shape = shapes[0]
    result = ModelBasedFracturer().fracture(shape, spec)
    metrics = solution_metrics(result.shots, shape, spec)
    print(f"\n{shape.name} with OURS: overlap ratio "
          f"{metrics.overlap_ratio:.2f}, coverage {metrics.coverage_ratio:.2f}, "
          f"sizes {metrics.min_shot_side:.0f}-{metrics.max_shot_side:.0f} nm, "
          f"{metrics.sliver_count} slivers")


if __name__ == "__main__":
    main()
