#!/usr/bin/env python3
"""Quickstart: fracture one ILT-style mask shape with the proposed method.

Runs the full two-stage pipeline (graph-coloring approximate fracturing +
iterative shot refinement) on a synthetic ILT clip, verifies the result
against the e-beam proximity model, and writes an SVG visualization plus
a solution JSON next to this script.

    python examples/quickstart.py
"""

from pathlib import Path

from repro import FractureSpec, ModelBasedFracturer
from repro.bench.shapes import ilt_suite
from repro.mask.io import save_solution
from repro.viz.render import render_fracture


def main() -> None:
    # The paper's model parameters: sigma=6.25nm, gamma=2nm, 1nm pixels,
    # fixed dose with print threshold 0.5, 10nm minimum shot size.
    spec = FractureSpec()
    print(f"model: sigma={spec.sigma}nm gamma={spec.gamma}nm "
          f"Lmin={spec.lmin}nm Lth={spec.lth:.1f}nm")

    # A curvy ILT-style target from the built-in benchmark suite.
    shape = ilt_suite()[0]
    print(f"target: {shape}")

    result = ModelBasedFracturer().fracture(shape, spec)
    print(f"shots: {result.shot_count}")
    print(f"runtime: {result.runtime_s:.2f}s")
    print(f"CD-clean: {result.feasible} "
          f"({result.report.total_failing} failing pixels)")
    stage1 = result.extra.get("initial_shots")
    print(f"stage 1 produced {stage1} shots; refinement + polish finished "
          f"with {result.shot_count}")

    out = Path(__file__).parent
    svg_path = out / "quickstart_solution.svg"
    svg_path.write_text(render_fracture(shape, result.shots))
    json_path = out / "quickstart_solution.json"
    save_solution(result.shots, spec, json_path, clip_name=shape.name,
                  metadata={"method": result.method})
    print(f"wrote {svg_path.name} and {json_path.name}")


if __name__ == "__main__":
    main()
